"""Admission control, per-client fairness, and cross-client single-flight.

The daemon-side job scheduler between the connection layer and the
persistent :class:`~repro.service.runner.BatchRunner` pool.  All of its
methods run on the daemon's event loop thread (runner completions are
marshalled back via ``loop.call_soon_threadsafe``), so the data
structures need no locks.

- **Admission control.**  At most ``max_queue`` jobs wait beyond the
  ``max_inflight`` dispatched into the pool; a submit past the bound
  raises :class:`Overloaded` and the connection layer answers with an
  explicit ``rejected`` frame — shedding load at the door instead of
  queueing unboundedly toward a timeout storm.
- **Per-client fairness.**  Queued jobs live in one FIFO per client;
  dispatch round-robins clients and takes each one's *oldest* job, so
  a client that dumped 1,000 jobs cannot starve one that submitted a
  single query — under overload everyone drains at the same rate.
- **Cross-client single-flight.**  Jobs with equal
  :meth:`~repro.service.jobs._JobBase.dedup_key` (canonical query /
  refinement-stream fingerprints) attach to the in-flight or queued
  representative instead of occupying a queue slot; when it lands, the
  one result fans out to every attached waiter as a
  :func:`~repro.service.runner.replay_result` copy.  This is the
  scheduler-level dedup of ``--dedup`` lifted from one batch to the
  whole daemon: duplicates coalesce *across* clients and arrival
  times, closing the ROADMAP's deferred in-flight-dedup item.
- **Cluster dispatch (optional).**  With a
  :class:`~repro.cluster.coordinator.ClusterCoordinator` attached, a
  dispatch first offers the job to a ready remote worker under an
  epoch-tagged lease; only when no worker has a free slot does it fall
  through to the *unchanged* local-runner path.  Degraded mode is that
  fall-through: zero healthy workers means every dispatch takes the
  same code today's single-machine daemon takes.  A revoked lease
  (missed heartbeats, dead connection) surfaces here as a synthesized
  crash result, so the existing retry policy re-dispatches it — on the
  next healthy worker or locally — with the same attempt-tagged
  exactly-once guarantee as a pool-worker death.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.service.jobs import JobResult, _JobBase
from repro.service.runner import BatchRunner, replay_result


class Overloaded(Exception):
    """Admission refused; ``reason`` is the wire ``rejected.error``."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


#: Delivery callback: ``(result, coalesced)`` on the event loop thread.
DeliverFn = Callable[[JobResult, bool], None]


class _Waiter:
    """One submitter attached to a flight."""

    __slots__ = ("client_id", "job", "deliver")

    def __init__(self, client_id: str, job: _JobBase, deliver: DeliverFn):
        self.client_id = client_id
        self.job = job
        self.deliver = deliver


class _Flight:
    """One execution: a representative job plus its attached waiters."""

    __slots__ = (
        "job", "key", "owner", "waiters", "dispatched", "timer",
        "attempt", "crashes", "last_result", "lease",
    )

    def __init__(self, job: _JobBase, key: Optional[str], owner: str):
        self.job = job
        self.key = key
        self.owner = owner  # client whose fairness queue holds it
        self.waiters: List[_Waiter] = []
        self.dispatched = False
        self.timer: Optional[asyncio.TimerHandle] = None
        #: Lease token while dispatched on a remote worker; ``None``
        #: for local (degraded / single-machine) dispatches.
        self.lease: Optional[str] = None
        #: Retry bookkeeping (see :meth:`JobScheduler._maybe_retry`):
        #: redispatches so far, worker kills attributed to this job, and
        #: the last failure result (delivered if a drain cuts the retry
        #: short).  The flight object survives retries, so single-flight
        #: waiters stay attached across a worker death.
        self.attempt = 0
        self.crashes = 0
        self.last_result: Optional[JobResult] = None


class JobScheduler:
    """Fair, bounded, deduplicating dispatch onto a started runner."""

    def __init__(
        self,
        runner: BatchRunner,
        loop: asyncio.AbstractEventLoop,
        max_queue: int = 128,
        max_inflight: Optional[int] = None,
        single_flight: bool = True,
        job_timeout: Optional[float] = None,
        cluster=None,
    ):
        self.runner = runner
        self.loop = loop
        #: Optional :class:`~repro.cluster.coordinator.ClusterCoordinator`;
        #: ``None`` keeps every dispatch on the local runner.
        self.cluster = cluster
        self.max_queue = max(1, int(max_queue))
        if max_inflight is None:
            # Match the pool's real concurrency: process workers, or
            # the inline executor's threads when there is no pool.
            max_inflight = (
                runner.config.workers
                or runner.config.inline_concurrency
            )
        self.max_inflight = max(1, max_inflight)
        self.single_flight = single_flight
        self.job_timeout = (
            job_timeout
            if job_timeout is not None
            else runner.config.job_timeout
        )
        self.draining = False
        self._queues: Dict[str, Deque[_Flight]] = {}
        self._rotation: Deque[str] = deque()
        self._by_key: Dict[str, _Flight] = {}
        self._inflight: Set[_Flight] = set()
        #: Flights occupying a *local* runner slot; remote leases do
        #: not count against ``max_inflight``, only against their
        #: worker's advertised capacity.
        self._local_inflight = 0
        #: Flights waiting out a retry backoff: not queued, not in
        #: flight, but still owed a delivery (drain waits on them too).
        self._retrying: Set[_Flight] = set()
        self._queued = 0
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        #: EWMA of completed-job runtimes, seeding the overload
        #: ``retry-after`` hint before the first completion lands.
        self._ewma_seconds = 0.5
        # -- lifetime counters (the daemon's /stats gauges) ----------------
        self.submitted = 0
        self.executed = 0
        self.completed = 0
        self.coalesced = 0
        self.rejected = 0
        self.timeouts = 0
        self.results_dropped = 0
        self.retries = 0
        self.quarantined = 0
        self.remote_dispatched = 0
        self.local_dispatched = 0
        self.quarantine_blocked = 0

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        client_id: str,
        job: _JobBase,
        deliver: DeliverFn,
    ) -> bool:
        """Admit one job; returns ``True`` when it coalesced.

        Raises :class:`Overloaded` when draining or past ``max_queue``.
        A coalesced job consumes no queue slot — attaching to a flight
        is free, which is the point of single-flight under load.
        """
        if self.draining:
            raise Overloaded("draining")
        self.submitted += 1
        waiter = _Waiter(client_id, job, deliver)
        key = job.dedup_key() if self.single_flight else None
        fleet_key = key if key is not None else (
            job.dedup_key() if self.cluster is not None else None
        )
        if (
            self.cluster is not None
            and fleet_key is not None
            and self.cluster.is_quarantined(fleet_key)
        ):
            # Fleet-wide quarantine: a key that already burned through
            # its crash budget somewhere in the fleet is answered with
            # the tombstone immediately — no queue slot, no execution,
            # no fresh chance to kill a node.
            self.quarantine_blocked += 1
            self.quarantined += 1
            tombstone = JobResult(
                job_id=job.job_id,
                kind=job.KIND,
                status="quarantined",
                error="quarantined fleet-wide after repeated crashes",
            )
            self.loop.call_soon(deliver, tombstone, False)
            return False
        if key is not None:
            flight = self._by_key.get(key)
            if flight is not None:
                flight.waiters.append(waiter)
                self.coalesced += 1
                return True
        if self._queued >= self.max_queue:
            self.rejected += 1
            raise Overloaded("overloaded")
        flight = _Flight(job, key, client_id)
        flight.waiters.append(waiter)
        if key is not None:
            self._by_key[key] = flight
        self._enqueue(client_id, flight)
        self._idle_event.clear()
        self._pump()
        return False

    def _enqueue(
        self, client_id: str, flight: _Flight, oldest_first: bool = False
    ) -> None:
        queue = self._queues.get(client_id)
        if queue is None:
            queue = self._queues[client_id] = deque()
            self._rotation.append(client_id)
        if oldest_first:
            queue.appendleft(flight)
        else:
            queue.append(flight)
        self._queued += 1

    # -- dispatch ------------------------------------------------------------

    def _capacity_free(self) -> bool:
        if self._local_inflight < self.max_inflight:
            return True
        return self.cluster is not None and self.cluster.has_capacity()

    def _pump(self) -> None:
        while self._capacity_free() and self._rotation:
            client_id = self._rotation.popleft()
            queue = self._queues.get(client_id)
            if not queue:
                self._queues.pop(client_id, None)
                continue
            flight = queue.popleft()
            self._queued -= 1
            if queue:
                self._rotation.append(client_id)
            else:
                del self._queues[client_id]
            self._dispatch(flight)

    def _dispatch(self, flight: _Flight) -> None:
        flight.dispatched = True
        flight.lease = None
        self._inflight.add(flight)
        self.executed += 1
        if self.job_timeout:
            flight.timer = self.loop.call_later(
                self.job_timeout, self._on_timeout, flight
            )
        # Completions are attempt-tagged: a dead worker's job can be
        # redispatched while the runner's monitor is still settling the
        # old attempt, and the stale delivery must not be mistaken for
        # the new attempt's answer.  The same tag covers remote leases:
        # a lease revoked for missed heartbeats synthesizes a crash
        # under the *old* attempt, so the node's eventual real answer
        # (if it was merely partitioned) is dropped exactly once.
        attempt = flight.attempt
        if self.cluster is not None:
            # Remote-first: coordinator callbacks already run on the
            # event loop thread, no threadsafe marshalling needed.
            token = self.cluster.try_dispatch(
                flight.job,
                lambda result, attempt=attempt: self._on_complete(
                    flight, result, attempt
                ),
            )
            if token is not None:
                flight.lease = token
                self.remote_dispatched += 1
                return
        # Degraded / single-machine mode: the pre-cluster dispatch
        # path, verbatim.
        self._local_inflight += 1
        self.local_dispatched += 1
        self.runner.submit(
            flight.job,
            lambda result, attempt=attempt: self.loop.call_soon_threadsafe(
                self._on_complete, flight, result, attempt
            ),
        )

    def _on_complete(
        self,
        flight: _Flight,
        result: JobResult,
        attempt: Optional[int] = None,
    ) -> None:
        if flight not in self._inflight:
            return  # already timed out; late worker result dropped
        if attempt is not None and attempt != flight.attempt:
            return  # stale delivery from a superseded attempt
        self._inflight.discard(flight)
        self._release_slot(flight)
        if flight.timer is not None:
            flight.timer.cancel()
            flight.timer = None
        if self._maybe_retry(flight, result):
            return
        self._finalize(flight, result)

    def _release_slot(self, flight: _Flight) -> None:
        if flight.lease is None:
            self._local_inflight -= 1
        else:
            flight.lease = None

    def _on_timeout(self, flight: _Flight) -> None:
        if flight not in self._inflight:
            return
        self._inflight.discard(flight)
        if flight.lease is not None and self.cluster is not None:
            # Stop the lease before releasing the slot: a worker still
            # chewing on the timed-out job must not have its eventual
            # ``done`` mistaken for a live lease's answer.
            self.cluster.revoke(flight.lease, reason="scheduler timeout")
        self._release_slot(flight)
        flight.timer = None
        self.timeouts += 1
        result = JobResult(
            job_id=flight.job.job_id,
            kind=flight.job.KIND,
            status="timeout",
            seconds=self.job_timeout,
            error=(
                "job exceeded the scheduler's "
                f"{self.job_timeout}s backstop"
            ),
        )
        if self._maybe_retry(flight, result):
            return
        self._finalize(flight, result)

    # -- retry ---------------------------------------------------------------

    def _maybe_retry(self, flight: _Flight, result: JobResult) -> bool:
        """Re-queue a crashed/timed-out flight under the runner's retry
        policy.  The flight object (and so its coalesced waiters) is
        retained: it stays out of ``_inflight`` during the backoff but
        keeps its ``_by_key`` slot, so new submitters coalesce onto the
        retry instead of racing it."""
        policy = self.runner.retry
        kind = policy.classify(result)
        if kind == "crash":
            flight.crashes += 1
        if kind is None or self.draining:
            return False
        if not policy.should_retry(kind, flight.attempt, flight.crashes):
            return False
        flight.attempt += 1
        flight.last_result = result
        self.retries += 1
        self._retrying.add(flight)
        flight.timer = self.loop.call_later(
            policy.delay(flight.attempt, flight.job.job_id),
            self._redispatch,
            flight,
        )
        return True

    def _redispatch(self, flight: _Flight) -> None:
        self._retrying.discard(flight)
        flight.timer = None
        if self.draining:
            # The drain barrier is waiting on this flight: deliver the
            # failure it would have retried instead of racing the pool
            # teardown with a fresh dispatch.
            self._finalize(flight, flight.last_result)
            return
        self._dispatch(flight)

    def _finalize(self, flight: _Flight, result: JobResult) -> None:
        self.runner.retry.finalize(result, flight.attempt, flight.crashes)
        if result.status == "quarantined":
            self.quarantined += 1
            if self.cluster is not None:
                key = flight.key
                if key is None:
                    key = flight.job.dedup_key()
                if key is not None:
                    # Poison propagates fleet-wide: every node refuses
                    # the key, and future submits get the tombstone at
                    # the door (see :meth:`submit`).
                    self.cluster.broadcast_quarantine(key)
        self._finish(flight, result)

    def _finish(self, flight: _Flight, result: JobResult) -> None:
        if flight.key is not None:
            self._by_key.pop(flight.key, None)
        self.completed += 1
        if result.seconds > 0:
            # EWMA of job runtimes, feeding the overload retry-after
            # hint; alpha 0.2 smooths over the bimodal cold/warm split.
            self._ewma_seconds += 0.2 * (result.seconds - self._ewma_seconds)
        if not flight.waiters:
            # Every submitter disconnected mid-job: the work completed
            # (the slot is recycled either way), the result is dropped.
            self.results_dropped += 1
        for waiter in flight.waiters:
            if waiter.job is flight.job:
                waiter.deliver(result, False)
            else:
                waiter.deliver(
                    replay_result(waiter.job, flight.job, result), True
                )
        self._pump()
        self._check_idle()

    # -- disconnects ---------------------------------------------------------

    def forget_client(self, client_id: str) -> None:
        """Drop a disconnected client's stake in every flight.

        Its queued-and-unshared flights are cancelled outright; shared
        queued flights are re-owned by a surviving waiter's client (the
        oldest-first slot keeps their queue age); dispatched flights
        keep running — their results fan out to surviving waiters or,
        with none left, are dropped on completion.
        """
        queue = self._queues.pop(client_id, None)
        if client_id in self._rotation:
            self._rotation.remove(client_id)
        for flight in queue or ():
            self._queued -= 1
            flight.waiters = [
                w for w in flight.waiters if w.client_id != client_id
            ]
            survivor = flight.waiters[0] if flight.waiters else None
            if survivor is None:
                if flight.key is not None:
                    self._by_key.pop(flight.key, None)
                continue
            flight.owner = survivor.client_id
            self._enqueue(survivor.client_id, flight, oldest_first=True)
        for flights in (
            self._inflight,
            self._retrying,
            *map(tuple, self._queues.values()),
        ):
            for flight in flights:
                flight.waiters = [
                    w
                    for w in flight.waiters
                    if w.client_id != client_id
                ]
        self._pump()
        self._check_idle()

    # -- drain ---------------------------------------------------------------

    def _check_idle(self) -> None:
        if not self._inflight and not self._queued and not self._retrying:
            self._idle_event.set()

    async def wait_idle(self) -> None:
        """Block until no job is queued, in flight, or awaiting a retry
        backoff (drain barrier)."""
        while self._inflight or self._queued or self._retrying:
            self._idle_event.clear()
            await self._idle_event.wait()

    # -- stats ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def retry_after_hint(self) -> float:
        """Seconds an overload-rejected client should wait before
        retrying: the backlog it would sit behind, paced by the EWMA
        job runtime spread over the pool's slots.  Clamped to
        ``[0.1, 60]`` so a cold estimate can't tell clients to hammer
        or to give up."""
        backlog = self._queued + len(self._inflight) + 1
        per_slot = self._ewma_seconds / max(1, self.max_inflight)
        return min(60.0, max(0.1, round(backlog * per_slot, 3)))

    def stats(self) -> dict:
        return {
            "queue_depth": self._queued,
            "in_flight": len(self._inflight),
            "max_queue": self.max_queue,
            "max_inflight": self.max_inflight,
            "single_flight": self.single_flight,
            "jobs_submitted": self.submitted,
            "jobs_executed": self.executed,
            "jobs_completed": self.completed,
            "singleflight_coalesced": self.coalesced,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "results_dropped": self.results_dropped,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "remote_dispatched": self.remote_dispatched,
            "local_dispatched": self.local_dispatched,
            "quarantine_blocked": self.quarantine_blocked,
            "draining": self.draining,
        }
