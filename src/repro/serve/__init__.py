"""Long-lived analysis daemon: many clients, one warm worker pool.

``python -m repro serve`` amortizes what every cold ``repro batch``
invocation pays again — interpreter start-up, worker-pool spawn, cache
and automata-store warm-up, solver-session spin-up — across every job
any client submits for the daemon's whole life.  Clients speak
newline-delimited JSON over a unix socket or TCP port
(:mod:`repro.serve.protocol`), results stream back the moment they
land, and duplicated work coalesces across clients through the
scheduler's single-flight table (:mod:`repro.serve.scheduler`).

- :mod:`repro.serve.protocol` — wire frames and their validation;
- :mod:`repro.serve.scheduler` — admission control, per-client
  fairness, cross-client single-flight;
- :mod:`repro.serve.server` — the asyncio daemon and its drain;
- :mod:`repro.serve.client` — the blocking client library
  (``python -m repro submit`` is a thin wrapper over it);
- :mod:`repro.serve.cli` — the ``serve`` / ``submit`` command bodies.
"""

from repro.serve.client import Rejected, ServeClient, ServeError
from repro.serve.scheduler import JobScheduler, Overloaded
from repro.serve.server import ServeConfig, ServeServer

__all__ = [
    "JobScheduler",
    "Overloaded",
    "Rejected",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeServer",
]
