"""Synchronous client for the serve daemon's wire protocol.

A thin blocking client (plain stdlib sockets — the daemon is the async
side) used by ``python -m repro submit`` and by tests.  One socket, one
in-order frame stream; because the daemon streams ``result`` frames in
completion order, the client keeps a small pending table keyed by
request id and surfaces results either per-request
(:meth:`ServeClient.wait_result`) or as they land
(:meth:`ServeClient.iter_results`).

With ``reconnect=True`` the client survives a daemon restart: a
request that hits a closed/refused connection redials with bounded
exponential backoff and retries once.  Reconnection also *resubmits*
every submit that was still awaiting its result — the daemon forgot
this client's stake on disconnect, so without resubmission those
results would simply never arrive and a mid-batch ``iter_results``
would hang.  Resubmission is idempotent from the caller's view: each
spec is resent under its **original** request id (the daemon echoes
ids verbatim, so existing waiters keep working), and daemon-side
single-flight coalesces a resubmitted spec onto its still-running
execution instead of running it twice.  Read *timeouts* are never
retried: the connection is still alive, the answer is just slow, and
redialing would abandon it.
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.serve import protocol
from repro.service.jobs import JobResult


class ServeError(RuntimeError):
    """An ``error`` frame from the daemon (or a protocol violation)."""

    def __init__(self, code: str, detail: str = ""):
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class Rejected(ServeError):
    """Admission refused (``overloaded`` / ``draining``)."""

    def __init__(self, reason: str, frame: dict):
        super().__init__(reason)
        self.reason = reason
        self.frame = frame

    @property
    def retry_after(self) -> Optional[float]:
        """The daemon's backoff hint (seconds), when it sent one."""
        value = self.frame.get("retry_after")
        return float(value) if value is not None else None


class ServeClient:
    """One connection to a serve daemon."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 300.0,
        reconnect: bool = False,
        reconnect_attempts: int = 5,
        reconnect_backoff_s: float = 0.2,
    ):
        if not socket_path and not port:
            raise ValueError("need a socket path or a port")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self._reconnect = reconnect
        self._reconnect_attempts = max(1, reconnect_attempts)
        self._reconnect_backoff_s = reconnect_backoff_s
        self._request_ids = itertools.count(1)
        #: request_id → ack frame, for submits awaiting their result.
        self._pending: Dict[object, dict] = {}
        #: request_id → the submitted job spec, kept until its result
        #: lands so :meth:`reconnect` can resubmit in-flight work.
        self._specs: Dict[object, dict] = {}
        #: result frames received while waiting on a different id.
        self._stashed: Dict[object, dict] = {}
        self._connect()

    def _connect(self) -> None:
        if self._socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(
                (self._host or "127.0.0.1", self._port)
            )
        sock.settimeout(self._timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    # -- context / teardown --------------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- reconnect -----------------------------------------------------------

    def reconnect(self) -> None:
        """Redial the daemon, then resubmit every in-flight submit.

        Stashed results are forgotten (they belonged to the dead
        connection), but pending submits are **resubmitted under their
        original request ids**: the daemon dropped this client's stake
        on disconnect, so resubmission is the only way their waiters
        ever see a result — and because the daemon echoes request ids
        verbatim and coalesces duplicate specs onto in-flight work,
        the recovery is invisible to callers blocked in
        :meth:`wait_result` / :meth:`iter_results`.  A resubmission the
        daemon *rejects* (overloaded after the restart) surfaces as an
        error-status result for that request rather than a hang.
        Raises :class:`ConnectionError` when every dial fails.
        """
        self.close()
        self._pending.clear()
        self._stashed.clear()
        resubmit = dict(self._specs)
        self._specs.clear()
        last_error: Optional[Exception] = None
        for attempt in range(self._reconnect_attempts):
            try:
                self._connect()
                break
            except OSError as exc:
                last_error = exc
                time.sleep(self._reconnect_backoff_s * 2**attempt)
        else:
            raise ConnectionError(
                f"could not reconnect after {self._reconnect_attempts} "
                f"attempts: {last_error}"
            )
        for request_id, spec in resubmit.items():
            try:
                # Direct send/await (not ``_request``): a connection
                # dying *during* resubmission must raise out of this
                # reconnect, not recurse into another one.
                self._send(
                    {"op": "submit", "id": request_id, "job": spec}
                )
                ack = self._next_frame(request_id, ("queued", "rejected"))
            except ServeError as exc:
                ack = {"op": "rejected", "error": exc.code}
            if ack["op"] == "rejected":
                self._stashed[request_id] = {
                    "op": "result",
                    "id": request_id,
                    "result": {
                        "job_id": str(spec.get("job_id", "")),
                        "kind": str(spec.get("kind", "")),
                        "status": "error",
                        "error": (
                            "resubmission after reconnect rejected: "
                            f"{ack.get('error', 'rejected')}"
                        ),
                    },
                }
                self._pending[request_id] = ack
                continue
            self._pending[request_id] = ack
            self._specs[request_id] = spec

    # -- frame transport -----------------------------------------------------

    def _send(self, frame: dict) -> None:
        self._sock.sendall(protocol.encode_frame(frame))

    def _recv(self) -> dict:
        line = self._reader.readline(protocol.MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.decode_frame(line)

    def _next_frame(self, request_id, ops: Tuple[str, ...]) -> dict:
        """Read until a frame for ``request_id`` with an op in ``ops``.

        Frames for *other* requests (streamed results landing out of
        order) are stashed for their own waiters; ``error`` frames
        raise.
        """
        stashed = self._stashed.get(request_id)
        if stashed is not None and stashed.get("op") in ops:
            return self._stashed.pop(request_id)
        while True:
            frame = self._recv()
            op = frame.get("op")
            if op == "error":
                raise ServeError(
                    frame.get("error", "error"), frame.get("detail", "")
                )
            if frame.get("id") == request_id and op in ops:
                return frame
            if op == "result":
                self._stashed[frame.get("id")] = frame

    def _request(self, frame: dict, request_id, ops: Tuple[str, ...]) -> dict:
        """One request/response exchange, reconnecting once when armed.

        ``socket.timeout`` is re-raised *before* the ``OSError`` branch
        it subclasses: a timed-out read means the connection is alive
        and the answer slow — redialing would abandon it for nothing.
        """
        try:
            self._send(frame)
            return self._next_frame(request_id, ops)
        except socket.timeout:
            raise
        except (ConnectionError, OSError):
            if not self._reconnect:
                raise
            self.reconnect()
            self._send(frame)
            return self._next_frame(request_id, ops)

    # -- requests ------------------------------------------------------------

    def ping(self) -> None:
        request_id = f"ping-{next(self._request_ids)}"
        self._request({"op": "ping", "id": request_id}, request_id, ("pong",))

    def stats(self) -> dict:
        request_id = f"stats-{next(self._request_ids)}"
        return self._request(
            {"op": "stats", "id": request_id}, request_id, ("stats",)
        )

    def health(self) -> dict:
        """The daemon's liveness/readiness report (``health`` op)."""
        request_id = f"health-{next(self._request_ids)}"
        frame = self._request(
            {"op": "health", "id": request_id}, request_id, ("health",)
        )
        return frame.get("health", {})

    def submit(self, job_spec: dict) -> dict:
        """Submit one job spec; returns the ``queued`` ack frame.

        Raises :class:`Rejected` on admission refusal (its
        ``retry_after`` carries the daemon's backoff hint).  The result
        arrives later — collect it with :meth:`wait_result` or
        :meth:`iter_results`.
        """
        request_id = f"req-{next(self._request_ids)}"
        ack = self._request(
            {"op": "submit", "id": request_id, "job": job_spec},
            request_id,
            ("queued", "rejected"),
        )
        if ack["op"] == "rejected":
            raise Rejected(ack.get("error", "rejected"), ack)
        # Registered only *after* the ack: an un-acked submit that dies
        # with the connection is retried by ``_request`` itself, and
        # registering it early would have reconnect resubmit it twice.
        self._pending[request_id] = ack
        self._specs[request_id] = dict(job_spec)
        return ack

    def wait_result(self, request_id) -> JobResult:
        """Block until the result for one submitted request lands.

        With ``reconnect=True`` a connection lost mid-wait redials and
        resubmits the in-flight specs (see :meth:`reconnect`), then
        resumes waiting; only a reconnect that itself fails raises.
        """
        while True:
            try:
                frame = self._next_frame(request_id, ("result",))
                break
            except socket.timeout:
                raise
            except (ConnectionError, OSError):
                if not self._reconnect:
                    raise
                self.reconnect()
        self._pending.pop(request_id, None)
        self._specs.pop(request_id, None)
        return JobResult.from_spec(frame["result"])

    def iter_results(self) -> Iterator[Tuple[object, JobResult, bool]]:
        """Yield ``(request_id, result, coalesced)`` as results stream in.

        Drains every pending submit in completion order — the first
        finished job is yielded first regardless of submission order.
        """
        while self._pending:
            for request_id in list(self._stashed):
                if request_id in self._pending:
                    frame = self._stashed.pop(request_id)
                    self._pending.pop(request_id)
                    self._specs.pop(request_id, None)
                    yield request_id, JobResult.from_spec(
                        frame["result"]
                    ), bool(frame.get("coalesced"))
                    break
            else:
                try:
                    frame = self._recv()
                except socket.timeout:
                    raise
                except (ConnectionError, OSError):
                    if not self._reconnect:
                        raise
                    # Redial + resubmit the not-yet-answered specs;
                    # the loop then keeps draining as if the daemon
                    # had never blinked.
                    self.reconnect()
                    continue
                op = frame.get("op")
                if op == "error":
                    raise ServeError(
                        frame.get("error", "error"),
                        frame.get("detail", ""),
                    )
                if op != "result":
                    continue
                request_id = frame.get("id")
                if request_id not in self._pending:
                    self._stashed[request_id] = frame
                    continue
                self._pending.pop(request_id)
                self._specs.pop(request_id, None)
                yield request_id, JobResult.from_spec(
                    frame["result"]
                ), bool(frame.get("coalesced"))

    def run(self, job_specs: List[dict]) -> List[JobResult]:
        """Submit specs and block for all results, in submission order."""
        order: Dict[object, int] = {}
        for index, spec in enumerate(job_specs):
            ack = self.submit(spec)
            order[ack["id"]] = index
        results: List[Optional[JobResult]] = [None] * len(job_specs)
        for request_id, result, _coalesced in self.iter_results():
            results[order[request_id]] = result
        return results
