"""The serve daemon's wire protocol: newline-delimited JSON frames.

One frame is one JSON object on one line, UTF-8, terminated by ``\\n``
— trivially streamable, inspectable with ``nc`` + ``jq``, and
resynchronizable after a bad frame (the next newline starts the next
frame).  Frames over ``max_frame_bytes`` are the one unrecoverable
case: the server cannot know where the oversized line ends without
buffering it, so it answers ``oversized-frame`` and closes.

Requests (client → server)::

    {"op": "submit", "id": "r1", "job": {"kind": "solve", ...}}
    {"op": "stats",  "id": "r2"}
    {"op": "ping",   "id": "r3"}
    {"op": "health", "id": "r4"}

``job`` is exactly the batch job-spec dict of
:func:`repro.service.jobs.job_from_spec` (``kind`` +
kind-specific fields); a missing ``job_id`` is filled in server-side.

Responses (server → client)::

    {"op": "queued",   "id": "r1", "job_id": ..., "coalesced": bool}
    {"op": "rejected", "id": "r1", "job_id": ..., "error":
        "overloaded" | "draining", "queue_depth": N, "max_queue": N,
        "retry_after": seconds}
    {"op": "health",   "id": "r4", "health": {"live": ..., "ready": ...}}
    {"op": "result",   "id": "r1", "job_id": ..., "coalesced": bool,
        "result": {JobResult spec}}
    {"op": "stats",    "id": "r2", "server": {...}, "obs": {...}}
    {"op": "pong",     "id": "r3"}
    {"op": "error",    "id": ...?, "error": "bad-json" |
        "oversized-frame" | "bad-request" | "unknown-op",
        "detail": "..."}

``queued``/``rejected`` acks arrive in request order; ``result``
frames arrive **whenever the job lands** — after later acks, between
other requests' results — which is the streaming contract.  ``id`` is
the client's correlation token (any JSON scalar) and is echoed
verbatim; results additionally echo ``job_id``.

Cluster operations (worker node ↔ coordinator, same listener)::

    {"op": "register",  "id": ..., "worker": {"worker_id": ...?,
        "capacity": N, "pid": N, "host": "..."}}
    {"op": "registered","id": ..., "worker_id": ..., "epoch": N,
        "heartbeat_s": S, "heartbeat_miss": N, "caches": {...},
        "quarantined": [keys]}
    {"op": "heartbeat", "worker_id": ..., "epoch": N, "ready": bool,
        "load": {...}, "health": {...}}
    {"op": "heartbeat_ack", "epoch": N}
    {"op": "assign",    "lease": {"token": ..., "epoch": N,
        "worker_id": ...}, "job": {job spec}}
    {"op": "done",      "lease": {...}, "result": {JobResult spec}}
    {"op": "cache_get", "id": ..., "store": "query" | "dfa", "key": fp}
    {"op": "cache_value", "id": ..., "found": bool, "blob": base64?}
    {"op": "cache_put", "store": ..., "key": fp, "blob": base64}
    {"op": "quarantine", "keys": [dedup keys]}

Leases are **epoch-tagged**: the coordinator bumps its epoch on every
registration and every declared death, and a ``done`` whose lease
token (or epoch) no longer matches the live lease table is dropped —
that is the exactly-once contract for re-dispatched work, the wire
twin of the runner's attempt-tagged slot healing.  ``cache_get`` /
``cache_put`` let workers read through the coordinator's persistent
query/automata stores (canonical fingerprints are host-independent);
blobs are base64-wrapped pickles, which is fine inside one trusted
fleet running one codebase and would need a real serialization before
crossing a trust boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

#: Default ceiling on one frame's byte length (requests and responses).
#: Generous enough for survey shards carrying package sources; small
#: enough that one bad client cannot balloon server memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Request operations the server understands from clients.
REQUEST_OPS = ("submit", "stats", "ping", "health")

#: Operations a cluster worker node sends its coordinator.  Routed only
#: when the daemon runs with cluster mode enabled; otherwise they are
#: answered with ``bad-request`` like any other malformed traffic.
CLUSTER_OPS = ("register", "heartbeat", "done", "cache_get", "cache_put")

#: ``rejected.error`` values (admission control outcomes).
REJECT_OVERLOADED = "overloaded"
REJECT_DRAINING = "draining"


class ProtocolError(Exception):
    """A frame the peer cannot process; ``code`` is the wire error."""

    def __init__(self, code: str, detail: str = ""):
        super().__init__(detail or code)
        self.code = code
        self.detail = detail


def encode_frame(payload: dict) -> bytes:
    """One frame: compact JSON + newline, UTF-8."""
    return (
        json.dumps(payload, separators=(",", ":"), default=repr) + "\n"
    ).encode("utf-8")


def decode_frame(data: bytes) -> dict:
    """Parse one received line into a frame dict.

    Raises :class:`ProtocolError` (``bad-json``) on undecodable bytes,
    malformed JSON, or a non-object top level.
    """
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad-json", str(exc)) from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            "bad-json", f"frame is {type(frame).__name__}, not an object"
        )
    return frame


@dataclass
class Request:
    """One validated client (or cluster-worker) request."""

    op: str
    request_id: Any = None
    job_spec: Optional[dict] = None
    #: The full decoded frame, kept for cluster ops whose payloads
    #: (lease, heartbeat load, cache blob) the coordinator validates.
    frame: Optional[dict] = None


def parse_request(frame: dict) -> Request:
    """Validate a decoded frame as a request.

    Raises :class:`ProtocolError` with code ``unknown-op`` for an
    unrecognized ``op`` and ``bad-request`` for a structurally invalid
    one (the job spec's *semantic* validation — unknown kind, bad
    fields — happens when the server instantiates the job, so the
    error can carry the constructor's message).
    """
    op = frame.get("op")
    if not isinstance(op, str) or (
        op not in REQUEST_OPS and op not in CLUSTER_OPS
    ):
        raise ProtocolError("unknown-op", f"unknown op {op!r}")
    request = Request(op=op, request_id=frame.get("id"), frame=frame)
    if op == "submit":
        job_spec = frame.get("job")
        if not isinstance(job_spec, dict):
            raise ProtocolError(
                "bad-request", "submit frame without a 'job' object"
            )
        if "kind" not in job_spec:
            raise ProtocolError(
                "bad-request", "job spec without a 'kind'"
            )
        request.job_spec = job_spec
    elif op == "done":
        if not isinstance(frame.get("lease"), dict) or not isinstance(
            frame.get("result"), dict
        ):
            raise ProtocolError(
                "bad-request", "done frame needs 'lease' and 'result'"
            )
    elif op in ("cache_get", "cache_put"):
        if not isinstance(frame.get("key"), str) or frame.get(
            "store"
        ) not in ("query", "dfa"):
            raise ProtocolError(
                "bad-request",
                f"{op} frame needs a 'key' and a 'store' of query|dfa",
            )
    return request


# -- response constructors ----------------------------------------------------


def queued_frame(request_id, job_id: str, coalesced: bool) -> dict:
    return {
        "op": "queued",
        "id": request_id,
        "job_id": job_id,
        "coalesced": coalesced,
    }


def rejected_frame(
    request_id, job_id: Optional[str], reason: str, **extra
) -> dict:
    frame = {
        "op": "rejected",
        "id": request_id,
        "job_id": job_id,
        "error": reason,
    }
    frame.update(extra)
    return frame


def result_frame(
    request_id, result_spec: dict, coalesced: bool
) -> dict:
    return {
        "op": "result",
        "id": request_id,
        "job_id": result_spec.get("job_id"),
        "coalesced": coalesced,
        "result": result_spec,
    }


def stats_frame(request_id, server: dict, obs_snapshot: dict) -> dict:
    return {
        "op": "stats",
        "id": request_id,
        "server": server,
        "obs": obs_snapshot,
    }


def pong_frame(request_id) -> dict:
    return {"op": "pong", "id": request_id}


def health_frame(request_id, health: dict) -> dict:
    return {"op": "health", "id": request_id, "health": health}


def error_frame(code: str, detail: str = "", request_id=None) -> dict:
    return {
        "op": "error",
        "id": request_id,
        "error": code,
        "detail": detail,
    }


# -- cluster frame constructors -----------------------------------------------


def register_frame(request_id, worker: dict) -> dict:
    return {"op": "register", "id": request_id, "worker": worker}


def registered_frame(
    request_id,
    worker_id: str,
    epoch: int,
    heartbeat_s: float,
    heartbeat_miss: int,
    caches: dict,
    quarantined: list,
) -> dict:
    return {
        "op": "registered",
        "id": request_id,
        "worker_id": worker_id,
        "epoch": epoch,
        "heartbeat_s": heartbeat_s,
        "heartbeat_miss": heartbeat_miss,
        "caches": caches,
        "quarantined": quarantined,
    }


def heartbeat_frame(
    worker_id: str, epoch: int, ready: bool, load: dict, health: dict
) -> dict:
    return {
        "op": "heartbeat",
        "worker_id": worker_id,
        "epoch": epoch,
        "ready": ready,
        "load": load,
        "health": health,
    }


def heartbeat_ack_frame(epoch: int) -> dict:
    return {"op": "heartbeat_ack", "epoch": epoch}


def assign_frame(lease: dict, job_spec: dict) -> dict:
    return {"op": "assign", "lease": lease, "job": job_spec}


def done_frame(lease: dict, result_spec: dict) -> dict:
    return {"op": "done", "lease": lease, "result": result_spec}


def cache_get_frame(request_id, store: str, key: str) -> dict:
    return {"op": "cache_get", "id": request_id, "store": store, "key": key}


def cache_value_frame(
    request_id, found: bool, blob: Optional[str] = None
) -> dict:
    frame = {"op": "cache_value", "id": request_id, "found": found}
    if blob is not None:
        frame["blob"] = blob
    return frame


def cache_put_frame(store: str, key: str, blob: str) -> dict:
    return {"op": "cache_put", "store": store, "key": key, "blob": blob}


def quarantine_frame(keys: list) -> dict:
    return {"op": "quarantine", "keys": list(keys)}
