"""The NPM regex survey pipeline (§7.1): extraction, classification,
corpus generation and aggregation into Tables 4/5."""

from repro.corpus.extract import RegexLiteral, extract_regex_literals
from repro.corpus.features import RegexFeatures, TABLE5_ROWS, classify
from repro.corpus.generator import (
    CorpusConfig,
    SyntheticPackage,
    TEMPLATE_POOL,
    generate_corpus,
)
from repro.corpus.survey import (
    SurveyResult,
    format_table4,
    format_table5,
    survey_packages,
)

__all__ = [
    "CorpusConfig",
    "RegexFeatures",
    "RegexLiteral",
    "SurveyResult",
    "SyntheticPackage",
    "TABLE5_ROWS",
    "TEMPLATE_POOL",
    "classify",
    "extract_regex_literals",
    "format_table4",
    "format_table5",
    "generate_corpus",
    "survey_packages",
]
