"""Regex-literal extraction from JavaScript source (§7.1 methodology).

The paper's survey uses "a lightweight static analysis that parses all
source files in a package and identifies regex literals and function
calls", explicitly *not* resolving ``new RegExp(...)`` construction (so
the numbers are a lower bound).  This module reproduces that analysis:
a scanner that walks JS source, skips strings/comments, resolves the
division-vs-regex ambiguity, and returns the literals with their flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class RegexLiteral:
    source: str
    flags: str
    line: int


_EXPRESSION_ENDERS = set(")]}")


def extract_regex_literals(source: str) -> List[RegexLiteral]:
    """All regex literals appearing in a JS source file."""
    literals: List[RegexLiteral] = []
    i = 0
    line = 1
    n = len(source)
    last_significant = ""

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                break
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch in "'\"`":
            i, line = _skip_string(source, i, line)
            last_significant = "str"
            continue
        if ch == "/" and _starts_regex(last_significant):
            literal, i = _read_regex_literal(source, i, line)
            if literal is not None:
                literals.append(literal)
                last_significant = "regex"
                continue
            # not a regex after all: treat as division
            i += 1
            last_significant = "/"
            continue
        if ch.isalnum() or ch in "_$":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            last_significant = source[start:i]
            continue
        last_significant = ch
        i += 1
    return literals


def _starts_regex(last: str) -> bool:
    if not last:
        return True
    if last in ("str", "regex"):
        return False
    if last[-1] in _EXPRESSION_ENDERS:
        return False
    if last[0].isalnum() or last[0] in "_$":
        # identifiers and literals end expressions, keywords do not
        return last in (
            "return", "typeof", "case", "in", "of", "new", "delete",
            "void", "instanceof", "do", "else", "yield",
        )
    return True


def _skip_string(source: str, i: int, line: int):
    quote = source[i]
    i += 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\\":
            i += 2
            continue
        if ch == quote:
            return i + 1, line
        if ch == "\n":
            if quote != "`":
                return i, line  # unterminated; bail gracefully
            line += 1
        i += 1
    return i, line


def _read_regex_literal(source: str, i: int, line: int):
    start = i
    i += 1
    n = len(source)
    in_class = False
    body_chars = 0
    while i < n:
        ch = source[i]
        if ch == "\\":
            i += 2
            body_chars += 2
            continue
        if ch == "\n":
            return None, start  # not a regex literal
        if in_class:
            if ch == "]":
                in_class = False
        elif ch == "[":
            in_class = True
        elif ch == "/":
            break
        i += 1
        body_chars += 1
    else:
        return None, start
    if body_chars == 0:
        return None, start  # "//" is a comment, not an empty regex
    body = source[start + 1:i]
    i += 1
    flag_start = i
    while i < n and (source[i].isalpha()):
        i += 1
    flags = source[flag_start:i]
    if any(f not in "gimsuy" for f in flags):
        return None, start
    return RegexLiteral(body, flags, line), i


def extract_from_package(files: Iterator[str]) -> List[RegexLiteral]:
    """Extract from every source file of a package."""
    literals: List[RegexLiteral] = []
    for content in files:
        literals.extend(extract_regex_literals(content))
    return literals
