"""Synthetic NPM-like corpus generator.

The paper surveys 415,487 real NPM packages; offline we generate a
corpus whose *population shape* matches the survey's findings so the
pipeline (extraction → classification → aggregation) can be exercised
end-to-end and Tables 4/5 regenerate with the paper's qualitative
ordering (see DESIGN.md, substitution table).

Shape parameters calibrated to the paper:

- 91.9% of packages have source files (Table 4);
- 34.9% of all packages contain a regex, 20.5% a capture group, 3.8% a
  backreference, 0.1% a quantified backreference;
- regex literals are heavily duplicated across packages (9.5M total vs
  306k unique, Table 5), which the pool-based sampling reproduces;
- the per-feature mix of the template pool follows Table 5's unique-%
  column ordering (captures > classes > plus/star > ignore-case > ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: (pattern, flags, weight) — a pool of realistic regex literals drawn
#: from common JS idioms (validators, parsers, sanitizers).  Weights bias
#: sampling toward the common cases, mirroring Table 5's skew.
TEMPLATE_POOL: List[Tuple[str, str, int]] = [
    # plain literals — a large silent majority with no fancy features
    (r"\.js$", "", 22),
    (r"^#", "", 14),
    (r"\.", "g", 20),
    (r",", "g", 16),
    (r"^\/", "", 12),
    (r"_", "g", 10),
    (r"\r\n", "g", 10),
    (r"^$", "", 6),
    (r"\.json$", "", 8),
    (r"\.min\.js$", "", 6),
    ("\\u00a0", "g", 4),
    (r"^\.", "", 7),
    (r"@", "", 6),
    # classes / quantifiers
    (r"\s+", "g", 28),
    (r"^\s+|\s+$", "g", 16),
    (r"[^a-z0-9]+", "gi", 12),
    (r"\d+", "", 16),
    (r"[A-Za-z]+", "", 10),
    (r"^[a-z]+$", "i", 10),
    (r"[\r\n]+", "g", 8),
    (r"%[sdj%]", "g", 8),
    (r"[.*+?^${}()|[\]\\]", "g", 8),
    (r"\s*", "g", 8),
    (r"-*$", "", 4),
    (r"^\d{4}-\d{2}-\d{2}$", "", 6),
    (r"\.{2,}", "g", 4),
    (r"a{2,4}", "", 1),
    (r"^v?\d+\.\d+\.\d+$", "", 7),
    # capture groups — ~39% of unique regexes, ~25% of totals
    (r"^(\d+)px$", "", 16),
    (r"([A-Z])", "g", 16),
    (r"^(\w+)=(\w+)$", "", 13),
    (r"(\d+)\.(\d+)", "", 10),
    (r"^([^:]+):(\d+)$", "", 10),
    (r"<(\w+)>([0-9]*)<\/\1>", "", 3),
    (r"^(?:(\w+):)?(\/\/)?([^:/]+)", "", 7),
    (r"(['\"])(?:\\.|[^\\])*?\1", "g", 2),
    (r"function\s*(\w*)\s*\(([^)]*)\)", "", 5),
    (r"^(.*?)(\d+)$", "", 6),
    (r"([a-f0-9]{2})", "gi", 5),
    (r"(\w+)\s(\w+)", "y", 1),
    (r"^(\d{2}):(\d{2})(?::(\d{2}))?$", "", 4),
    (r"^(-?\d*)(\D*)$", "", 5),
    (r"([.+*?=^!:${}()[\]|/\\])", "g", 5),
    (r"#(\w)(\w)(\w)", "i", 4),
    (r"^([a-z]*)", "", 5),
    # non-capturing / lazy
    (r"(?:\r\n|\r|\n)", "g", 7),
    (r"<.*?>", "g", 5),
    (r"\/\*[\s\S]*?\*\/", "gm", 3),
    (r"(?:[a-z]+-)+[a-z]+", "", 2),
    # word boundaries / anchors / multiline
    (r"\bfunction\b", "", 5),
    (r"\bTODO\b|\bFIXME\b", "g", 3),
    (r"^\s*//", "m", 4),
    (r"^[ \t]+", "gm", 4),
    # lookaheads
    (r"(?=.*\d)(?=.*[a-z]).{8,}", "", 2),
    (r"\B(?=(\d{3})+(?!\d))", "g", 2),
    (r"[a-z]+(?![0-9])", "", 1),
    # backreferences
    (r"(\w)\1", "g", 2),
    (r"(['\"])([^'\"]*)\1", "", 2),
    (r"^(.+?)\1+$", "", 1),  # quantified backreference (rare)
    (r"\b(\w+)\s+\1\b", "gi", 1),
    # lazy repetition (very rare, Table 5's 0.07%)
    (r"^.{1,32}?:", "", 1),
    # unicode / sticky flags (rare)
    (r"\u{1F600}", "u", 1),
    (r"\d+", "y", 1),
]

_FILE_TEMPLATES = [
    "var re{i} = /{pattern}/{flags};\nmodule.exports.m{i} = "
    "function (s) {{ return re{i}.test(s); }};\n",
    "function f{i}(input) {{\n  var m = /{pattern}/{flags}.exec(input);\n"
    "  return m ? m[0] : null;\n}}\nmodule.exports.f{i} = f{i};\n",
    "module.exports.clean{i} = function (s) {{\n"
    "  return s.replace(/{pattern}/{flags}, '');\n}};\n",
]


@dataclass
class SyntheticPackage:
    """One generated package: a name plus JS source files."""

    name: str
    files: List[str] = field(default_factory=list)

    @property
    def has_source(self) -> bool:
        return bool(self.files)


@dataclass
class CorpusConfig:
    n_packages: int = 4000
    seed: int = 1909
    p_has_source: float = 0.919
    p_has_regex: float = 0.349 / 0.919  # conditional on having source
    max_regexes_per_package: int = 40


def generate_corpus(config: CorpusConfig = CorpusConfig()) -> List[SyntheticPackage]:
    """Generate the corpus deterministically from the seed."""
    rng = random.Random(config.seed)
    weights = [w for _, _, w in TEMPLATE_POOL]
    packages: List[SyntheticPackage] = []
    for index in range(config.n_packages):
        name = f"pkg-{index:06d}"
        if rng.random() >= config.p_has_source:
            packages.append(SyntheticPackage(name))
            continue
        files: List[str] = []
        if rng.random() < config.p_has_regex:
            count = _regex_count(rng, config.max_regexes_per_package)
            chunks = []
            for i in range(count):
                pattern, flags, _ = rng.choices(
                    TEMPLATE_POOL, weights=weights
                )[0]
                template = rng.choice(_FILE_TEMPLATES)
                chunks.append(
                    template.format(i=i, pattern=pattern, flags=flags)
                )
            files.append("".join(chunks))
        else:
            files.append(
                "module.exports = function (x) { return x + 1; };\n"
            )
        packages.append(SyntheticPackage(name, files))
    return packages


def _regex_count(rng: random.Random, cap: int) -> int:
    """Zipf-ish: most packages hold a few regexes, some hold dozens."""
    value = int(rng.paretovariate(1.3))
    return max(1, min(value, cap))
