"""A catalog of real-world JavaScript regexes for validation.

Patterns collected from widely-used open-source JavaScript idioms
(semver/URL/email validation, parsers, sanitizers, syntax highlighting,
framework internals).  The catalog drives validation tests: every entry
must parse, classify, match its positive examples, reject its negative
examples, and — where marked solvable — yield a CEGAR-validated input
from the model.

Each entry: (pattern, flags, positives, negatives, tags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class CatalogEntry:
    pattern: str
    flags: str
    positives: Tuple[str, ...]
    negatives: Tuple[str, ...]
    tags: Tuple[str, ...] = ()

    @property
    def display(self) -> str:
        return f"/{self.pattern}/{self.flags}"


def _entry(pattern, flags, positives, negatives, tags=()):
    return CatalogEntry(
        pattern, flags, tuple(positives), tuple(negatives), tuple(tags)
    )


CATALOG: List[CatalogEntry] = [
    # -- validators -----------------------------------------------------------
    _entry(r"^\d+$", "", ["0", "42", "007"], ["", "4a", "-1"], ["anchor"]),
    _entry(
        r"^[a-f0-9]{8}$", "i",
        ["deadbeef", "DEADBEEF", "01234567"],
        ["xyz", "deadbee", "deadbeef9"],
        ["class", "ignorecase"],
    ),
    _entry(
        r"^v?(\d+)\.(\d+)\.(\d+)$", "",
        ["1.2.3", "v0.0.1", "10.20.30"],
        ["1.2", "v1.2.3.4", "a.b.c"],
        ["captures", "semver"],
    ),
    _entry(
        r"^(\w+)@(\w+)\.([a-z]{2,3})$", "",
        ["bob@host.com", "a@b.io"],
        ["bob@host", "@host.com", "bob@host.company"],
        ["captures", "email"],
    ),
    _entry(
        r"^#?([a-f0-9]{6}|[a-f0-9]{3})$", "",
        ["#fff", "a1b2c3", "#a1b2c3"],
        ["#ffff", "xyzxyz", "#"],
        ["captures", "alternation", "color"],
    ),
    _entry(
        r"^[+-]?\d+(\.\d+)?$", "",
        ["1", "-1", "+3.25", "0.5"],
        ["1.", ".5", "1.2.3", "e5"],
        ["captures", "number"],
    ),
    _entry(
        r"^(?:y|yes|true|1|on)$", "i",
        ["y", "YES", "True", "on", "1"],
        ["no", "yessir", ""],
        ["alternation", "yn"],
    ),
    # -- parsers ---------------------------------------------------------------
    _entry(
        r"^(\w+)=(.*)$", "",
        ["key=value", "a=", "x=1=2"],
        ["=value", "novalue"],
        ["captures", "kv"],
    ),
    _entry(
        r"<(\w+)>([0-9]*)<\/\1>", "",
        ["<t>42</t>", "<timeout></timeout>"],
        ["<a>1</b>", "<a>x</a>"],
        ["captures", "backreference", "listing1"],
    ),
    _entry(
        r"^([^:]+):(\d+)$", "",
        ["localhost:8080", "a:1"],
        ["nocolon", ":80", "host:"],
        ["captures", "hostport"],
    ),
    _entry(
        r"^\s*([\w.-]+)\s*:\s*(.*?)\s*$", "",
        ["key: value", "  a.b-c :x  "],
        [": value", ""],
        ["captures", "lazy", "header"],
    ),
    _entry(
        r"(['\"])((?:\\.|[^\\])*?)\1", "",
        ["'abc'", '"x"', "say 'it' now"],
        ["'unterminated", "plain"],
        ["captures", "backreference", "lazy", "strings"],
    ),
    _entry(
        r"^(\d{4})-(\d{2})-(\d{2})T(\d{2}):(\d{2})$", "",
        ["2019-06-22T09:30"],
        ["2019-6-22T09:30", "2019-06-22 09:30"],
        ["captures", "repetition", "date"],
    ),
    # -- sanitizers / rewriting --------------------------------------------------
    _entry(
        r"[.*+?^${}()|[\]\\]", "g",
        ["a.b", "x*", "(y)"],
        ["abc", ""],
        ["class", "escape"],
    ),
    _entry(
        r"^\s+|\s+$", "g",
        ["  padded  ", "x "],
        ["tight"],
        ["alternation", "trim"],
    ),
    _entry(
        r"([A-Z])", "g",
        ["camelCase", "X"],
        ["lower_only", "123"],
        ["captures", "case-conversion"],
    ),
    _entry(
        r"(?:\r\n|\r|\n)", "g",
        ["a\nb", "a\r\nb", "\r"],
        ["oneline"],
        ["noncapturing", "newlines"],
    ),
    # -- boundaries / lookaheads ---------------------------------------------------
    _entry(
        r"\bclass\b", "",
        ["a class here", "class"],
        ["classes", "subclass"],
        ["boundary", "keyword"],
    ),
    _entry(
        r"\B_\B", "",
        ["snake_case"],
        ["_lead", "trail_"],
        ["boundary"],
    ),
    _entry(
        r"^(?=.*[0-9])(?=.*[a-z])[a-z0-9]{6,}$", "",
        ["abc123", "p4ssw0rd"],
        ["abcdef", "123456", "ab1"],
        ["lookahead", "password"],
    ),
    _entry(
        r"\d+(?=px)", "",
        ["10px", "1px"],
        ["10em", "px"],
        ["lookahead", "css"],
    ),
    _entry(
        r"^(?!-)[a-z-]+$", "",
        ["abc", "a-b"],
        ["-abc", "a_b", ""],
        ["lookahead", "negative"],
    ),
    # -- backreferences --------------------------------------------------------------
    _entry(
        r"(\w)\1", "",
        ["aa", "bookkeeper"],
        ["abc", "aba"],
        ["backreference"],
    ),
    _entry(
        r"\b(\w+)\s+\1\b", "",
        ["the the end", "go go"],
        ["the them", "nothing doubled"],
        ["backreference", "boundary", "doubled-word"],
    ),
    # -- sticky / global state -------------------------------------------------------
    _entry(
        r"goo+d", "y",
        ["goood"],
        ["so goood"],  # sticky: must match at lastIndex 0
        ["sticky", "paper"],
    ),
    _entry(
        r"[^\x00-\x7F]", "",
        ["café", "naïve"],
        ["ascii only"],
        ["class", "non-ascii"],
    ),
    # -- framework / build-tool idioms ---------------------------------------------
    _entry(
        r"^\.\.?(\/|$)", "",
        ["./x", "../up", ".."],
        ["path/to", ".hidden"],
        ["alternation", "relative-path"],
    ),
    _entry(
        r"\{\{(\w+)\}\}", "g",
        ["hello {{name}}", "{{a}}{{b}}"],
        ["{ name }", "{{}}"],
        ["captures", "template"],
    ),
    _entry(
        r"^--?(\w[\w-]*)$", "",
        ["--verbose", "-v", "--dry-run"],
        ["---x", "plain", "--"],
        ["captures", "cli-flag"],
    ),
    _entry(
        r"^(Mon|Tue|Wed|Thu|Fri|Sat|Sun)$", "",
        ["Mon", "Sun"],
        ["Monday", "mon", ""],
        ["captures", "alternation", "weekday"],
    ),
    _entry(
        r"([?&])(\w+)=([^&]*)", "",
        ["?q=x", "&page=2", "url?a=1&b=2"],
        ["no query", "?=x"],
        ["captures", "querystring"],
    ),
    _entry(
        r"^(0|[1-9]\d*)$", "",
        ["0", "7", "1900"],
        ["007", "-1", ""],
        ["captures", "alternation", "canonical-int"],
    ),
    _entry(
        r"\s*,\s*", "g",
        ["a, b", "a ,b", "x,y"],
        ["ab"],
        ["split-separator"],
    ),
    _entry(
        r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$", "",
        ["snake_case", "a1", "x_y_z"],
        ["_lead", "Upper", "double__under"],
        ["noncapturing", "identifier"],
    ),
    _entry(
        r"(\d+)\s*(px|em|rem|%)", "",
        ["10px", "2 em", "50%"],
        ["px", "ten px"],
        ["captures", "alternation", "css-unit"],
    ),
    _entry(
        r"^\[(\w+)\]\s*(.*)$", "",
        ["[info] started", "[err]"],
        ["info: started", "(info) x"],
        ["captures", "log-line"],
    ),
]

#: Entries whose membership models are comfortably solvable (used by the
#: end-to-end catalog validation; a handful are excluded for solver cost,
#: not correctness — they still pass parse/classify/concrete tests).
SOLVABLE_TAGS_EXCLUDED = frozenset({"password"})


def solvable_entries() -> List[CatalogEntry]:
    return [
        entry
        for entry in CATALOG
        if not (set(entry.tags) & SOLVABLE_TAGS_EXCLUDED)
    ]
