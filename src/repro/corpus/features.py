"""Regex feature classification — the feature taxonomy of Table 5.

Each extracted regex is parsed with the ES6 front end and classified
against the 19 feature rows the paper reports (capture groups, flags,
classes, quantifier variants, boundaries, lookaheads, backreferences,
quantified backreferences, ...).
"""

from __future__ import annotations

import re as _stdlib_re
from dataclasses import dataclass, field, fields
from typing import Optional

from repro.regex import ast, parse_pattern
from repro.regex.errors import RegexError
from repro.regex.flags import Flags
from repro.model.backrefs import has_quantified_backref


@dataclass
class RegexFeatures:
    """Feature flags for one regex (one row contribution to Table 5)."""

    capture_groups: bool = False
    global_flag: bool = False
    character_class: bool = False
    kleene_plus: bool = False
    kleene_star: bool = False
    ignore_case_flag: bool = False
    ranges: bool = False
    non_capturing: bool = False
    repetition: bool = False
    kleene_star_lazy: bool = False
    multiline_flag: bool = False
    word_boundary: bool = False
    kleene_plus_lazy: bool = False
    lookaheads: bool = False
    backreferences: bool = False
    repetition_lazy: bool = False
    quantified_backrefs: bool = False
    sticky_flag: bool = False
    unicode_flag: bool = False

    @staticmethod
    def feature_names() -> list:
        return [f.name for f in fields(RegexFeatures)]

    def any_non_classical(self) -> bool:
        return (
            self.capture_groups
            or self.backreferences
            or self.lookaheads
            or self.word_boundary
        )


_RANGE_RE = _stdlib_re.compile(r"[^\\\[]-[^\]]")


def classify(source: str, flags: str = "") -> Optional[RegexFeatures]:
    """Classify one regex; ``None`` if it fails to parse as ES6."""
    try:
        parsed_flags = Flags.parse(flags)
        pattern = parse_pattern(source, parsed_flags)
    except (RegexError, RecursionError):
        return None

    features = RegexFeatures(
        global_flag=parsed_flags.global_,
        ignore_case_flag=parsed_flags.ignore_case,
        multiline_flag=parsed_flags.multiline,
        sticky_flag=parsed_flags.sticky,
        unicode_flag=parsed_flags.unicode,
    )

    for node in ast.walk(pattern.body):
        if isinstance(node, ast.Group):
            features.capture_groups = True
        elif isinstance(node, ast.NonCapGroup):
            features.non_capturing = True
        elif isinstance(node, ast.Lookahead):
            features.lookaheads = True
        elif isinstance(node, ast.WordBoundary):
            features.word_boundary = True
        elif isinstance(node, ast.Backreference):
            features.backreferences = True
        elif isinstance(node, ast.CharMatch):
            if node.source.startswith("["):
                features.character_class = True
                if _RANGE_RE.search(node.source):
                    features.ranges = True
        elif isinstance(node, ast.Quantifier):
            _classify_quantifier(node, features)

    if features.backreferences and has_quantified_backref(pattern):
        features.quantified_backrefs = True
    return features


def _classify_quantifier(
    node: ast.Quantifier, features: RegexFeatures
) -> None:
    low, high = node.min, node.max
    if (low, high) == (0, None):
        if node.lazy:
            features.kleene_star_lazy = True
        else:
            features.kleene_star = True
    elif (low, high) == (1, None):
        if node.lazy:
            features.kleene_plus_lazy = True
        else:
            features.kleene_plus = True
    elif (low, high) == (0, 1):
        pass  # optionals are not a Table 5 row
    else:
        if node.lazy:
            features.repetition_lazy = True
        else:
            features.repetition = True


#: Display names used by the Table 5 harness, in the paper's row order.
TABLE5_ROWS = [
    ("capture_groups", "Capture Groups"),
    ("global_flag", "Global Flag"),
    ("character_class", "Character Class"),
    ("kleene_plus", "Kleene+"),
    ("kleene_star", "Kleene*"),
    ("ignore_case_flag", "Ignore Case Flag"),
    ("ranges", "Ranges"),
    ("non_capturing", "Non-capturing"),
    ("repetition", "Repetition"),
    ("kleene_star_lazy", "Kleene* (Lazy)"),
    ("multiline_flag", "Multiline Flag"),
    ("word_boundary", "Word Boundary"),
    ("kleene_plus_lazy", "Kleene+ (Lazy)"),
    ("lookaheads", "Lookaheads"),
    ("backreferences", "Backreferences"),
    ("repetition_lazy", "Repetition (Lazy)"),
    ("quantified_backrefs", "Quantified BRefs"),
    ("sticky_flag", "Sticky Flag"),
    ("unicode_flag", "Unicode Flag"),
]
