"""The §7.1 survey pipeline: extraction → classification → Tables 4/5."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.extract import RegexLiteral, extract_regex_literals
from repro.corpus.features import RegexFeatures, TABLE5_ROWS, classify
from repro.corpus.generator import SyntheticPackage


@dataclass
class Table4Row:
    label: str
    count: int
    percent: float


@dataclass
class Table5Row:
    label: str
    total: int
    total_percent: float
    unique: int
    unique_percent: float


@dataclass
class SurveyResult:
    """Aggregated survey output (the paper's Tables 4 and 5)."""

    n_packages: int = 0
    with_source: int = 0
    with_regex: int = 0
    with_captures: int = 0
    with_backrefs: int = 0
    with_quantified_backrefs: int = 0
    total_regexes: int = 0
    unique_regexes: int = 0
    feature_totals: Dict[str, int] = field(default_factory=dict)
    feature_uniques: Dict[str, int] = field(default_factory=dict)
    unparsable: int = 0

    def table4(self) -> List[Table4Row]:
        def row(label: str, count: int) -> Table4Row:
            pct = 100.0 * count / self.n_packages if self.n_packages else 0.0
            return Table4Row(label, count, pct)

        return [
            row("Packages", self.n_packages),
            row("... with source files", self.with_source),
            row("... with regular expressions", self.with_regex),
            row("... with capture groups", self.with_captures),
            row("... with backreferences", self.with_backrefs),
            row("... with quantified backreferences",
                self.with_quantified_backrefs),
        ]

    def table5(self) -> List[Table5Row]:
        rows = [
            Table5Row(
                "Total Regex",
                self.total_regexes,
                100.0,
                self.unique_regexes,
                100.0,
            )
        ]
        for feature, label in TABLE5_ROWS:
            total = self.feature_totals.get(feature, 0)
            unique = self.feature_uniques.get(feature, 0)
            rows.append(
                Table5Row(
                    label,
                    total,
                    100.0 * total / self.total_regexes
                    if self.total_regexes
                    else 0.0,
                    unique,
                    100.0 * unique / self.unique_regexes
                    if self.unique_regexes
                    else 0.0,
                )
            )
        return rows


def survey_packages(
    packages: Sequence[SyntheticPackage],
    unique_out: Optional[Dict[Tuple[str, str], RegexFeatures]] = None,
) -> SurveyResult:
    """Run the full survey over a corpus of packages.

    When ``unique_out`` is given it is filled with the map of unique
    ``(source, flags)`` literals to their classified features — the
    batch service's survey shards use it to merge unique counts exactly
    across shards without re-classifying anything.
    """
    result = SurveyResult(n_packages=len(packages))
    unique_seen: Dict[Tuple[str, str], RegexFeatures] = (
        unique_out if unique_out is not None else {}
    )
    feature_names = RegexFeatures.feature_names()
    result.feature_totals = {name: 0 for name in feature_names}
    result.feature_uniques = {name: 0 for name in feature_names}

    for package in packages:
        if not package.has_source:
            continue
        result.with_source += 1
        literals: List[RegexLiteral] = []
        for content in package.files:
            literals.extend(extract_regex_literals(content))
        if not literals:
            continue
        result.with_regex += 1
        package_flags = {"captures": False, "backrefs": False, "qbr": False}
        for literal in literals:
            features = classify(literal.source, literal.flags)
            if features is None:
                result.unparsable += 1
                continue
            result.total_regexes += 1
            key = (literal.source, literal.flags)
            is_new = key not in unique_seen
            if is_new:
                unique_seen[key] = features
            for name in feature_names:
                if getattr(features, name):
                    result.feature_totals[name] += 1
                    if is_new:
                        result.feature_uniques[name] += 1
            if features.capture_groups:
                package_flags["captures"] = True
            if features.backreferences:
                package_flags["backrefs"] = True
            if features.quantified_backrefs:
                package_flags["qbr"] = True
        if package_flags["captures"]:
            result.with_captures += 1
        if package_flags["backrefs"]:
            result.with_backrefs += 1
        if package_flags["qbr"]:
            result.with_quantified_backrefs += 1

    result.unique_regexes = len(unique_seen)
    return result


def format_table4(result: SurveyResult) -> str:
    lines = ["Feature                                    Count        %"]
    for row in result.table4():
        lines.append(
            f"{row.label:<40} {row.count:>8} {row.percent:>7.1f}%"
        )
    return "\n".join(lines)


def format_table5(result: SurveyResult) -> str:
    lines = [
        "Feature               Total      %     Unique     %",
    ]
    for row in result.table5():
        lines.append(
            f"{row.label:<20} {row.total:>7} {row.total_percent:>6.2f}% "
            f"{row.unique:>7} {row.unique_percent:>6.2f}%"
        )
    return "\n".join(lines)
