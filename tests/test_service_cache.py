"""Tests for the solver query cache: fingerprints, LRU, soundness."""

import pytest

from repro.constraints import (
    Eq,
    InRe,
    Not,
    StrConst,
    StrVar,
    Undef,
    concat,
    conj,
    disj,
    neg,
    to_nnf,
)
from repro.constraints.printer import canonical_fingerprint, canonical_regex
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.regex import parse_regex
from repro.service import CachedResult, CachedSolver, QueryCache
from repro.solver import SAT, Solver, SolverResult, UNKNOWN, UNSAT
from repro.solver.core import _holds

x, y, z = StrVar("x"), StrVar("y"), StrVar("z")


def re_node(src, flags=""):
    return parse_regex(src, flags).body


class TestCanonicalFingerprint:
    def test_alpha_renaming_makes_names_irrelevant(self):
        f1 = conj([Eq(x, StrConst("v")), InRe(y, re_node("a+"))])
        f2 = conj([Eq(z, StrConst("v")), InRe(x, re_node("a+"))])
        assert canonical_fingerprint(f1)[0] == canonical_fingerprint(f2)[0]

    def test_variable_identity_is_preserved(self):
        # x=x and x=y must not collapse to the same key.
        same = canonical_fingerprint(Eq(x, x))[0]
        different = canonical_fingerprint(Eq(x, y))[0]
        assert same != different

    def test_constants_distinguish(self):
        f1 = Eq(x, StrConst("a"))
        f2 = Eq(x, StrConst("b"))
        assert canonical_fingerprint(f1)[0] != canonical_fingerprint(f2)[0]

    def test_undef_and_empty_string_distinguish(self):
        f1 = Eq(x, Undef())
        f2 = Eq(x, StrConst(""))
        assert canonical_fingerprint(f1)[0] != canonical_fingerprint(f2)[0]

    def test_structure_distinguishes(self):
        pos = InRe(x, re_node("a"))
        assert (
            canonical_fingerprint(pos)[0]
            != canonical_fingerprint(Not(pos))[0]
        )

    def test_concat_terms(self):
        f1 = Eq(concat(x, StrConst("-"), y), StrConst("a-b"))
        f2 = Eq(concat(y, StrConst("-"), z), StrConst("a-b"))
        assert canonical_fingerprint(f1)[0] == canonical_fingerprint(f2)[0]

    def test_renaming_maps_all_variables(self):
        formula = conj([Eq(x, y), InRe(z, re_node("a"))])
        _, renaming = canonical_fingerprint(formula)
        assert set(renaming) == {x, y, z}
        assert len(set(renaming.values())) == 3

    def test_equivalent_charsets_coincide(self):
        assert canonical_regex(re_node(r"\d")) == canonical_regex(
            re_node("[0-9]")
        )

    def test_language_preserving_normalisation(self):
        # Non-capturing groups are transparent and laziness is erased:
        # same language either way.
        assert canonical_regex(re_node("(?:a)b")) == canonical_regex(
            re_node("ab")
        )
        assert canonical_regex(re_node("a+?")) == canonical_regex(
            re_node("a+")
        )

    def test_capture_groups_stay_distinguishable(self):
        # Backreference semantics depend on group structure, so capture
        # groups are NOT erased: ((a)b)\2 and (a)(b)\2 denote different
        # languages and must not share a cache key.
        assert canonical_regex(re_node(r"((a)b)\2")) != canonical_regex(
            re_node(r"(a)(b)\2")
        )
        assert canonical_regex(re_node("(a)b")) != canonical_regex(
            re_node("ab")
        )

    def test_languages_distinguish(self):
        assert canonical_regex(re_node("a*")) != canonical_regex(
            re_node("a+")
        )
        assert canonical_regex(re_node("a{2,3}")) != canonical_regex(
            re_node("a{2,4}")
        )


class TestQueryCache:
    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        cache.put("a", CachedResult(UNSAT))
        cache.put("b", CachedResult(UNSAT))
        assert cache.get("a") is not None  # refreshes "a"
        cache.put("c", CachedResult(UNSAT))  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1

    def test_counters(self):
        cache = QueryCache()
        cache.get("missing")
        cache.put("k", CachedResult(UNSAT))
        cache.get("k")
        counters = cache.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["hit_rate"] == 0.5


class _StubSolver:
    """Returns a scripted result and counts invocations."""

    def __init__(self, result):
        self.result = result
        self.calls = 0

    def solve(self, formula):
        self.calls += 1
        return self.result


class TestCachedSolver:
    def test_hit_short_circuits_the_solver(self):
        stub = _StubSolver(SolverResult(UNSAT, None))
        cached = CachedSolver(stub)
        formula = Eq(x, StrConst("a"))
        cached.solve(formula)
        cached.solve(formula)
        assert stub.calls == 1
        assert (cached.hits, cached.misses) == (1, 1)

    def test_unknown_is_never_cached(self):
        stub = _StubSolver(SolverResult(UNKNOWN, None))
        cached = CachedSolver(stub)
        formula = Eq(x, StrConst("a"))
        assert cached.solve(formula).status == UNKNOWN
        assert cached.solve(formula).status == UNKNOWN
        assert stub.calls == 2  # re-asked every time
        assert len(cached.cache) == 0
        # ...so a later, better-resourced solver can still answer.
        cached.solver = _StubSolver(SolverResult(UNSAT, None))
        assert cached.solve(formula).status == UNSAT
        assert len(cached.cache) == 1

    def test_model_transfers_through_renaming(self):
        cache = QueryCache()
        solver = CachedSolver(Solver(), cache=cache)
        first = solver.solve(conj([Eq(x, StrConst("ab")), Eq(y, x)]))
        second = solver.solve(conj([Eq(z, StrConst("ab")), Eq(x, z)]))
        assert solver.hits == 1
        assert first.model[x] == "ab" and first.model[y] == "ab"
        assert second.model[z] == "ab" and second.model[x] == "ab"

    def test_shared_cache_across_instances(self):
        cache = QueryCache()
        a = CachedSolver(Solver(), cache=cache)
        b = CachedSolver(Solver(), cache=cache)
        formula = InRe(x, re_node("ab?c"))
        a.solve(formula)
        result = b.solve(formula)
        assert (b.hits, a.misses) == (1, 1)
        assert result.status == SAT


# -- cache soundness over the solver/cegar fixture formulas -------------------


def _fixture_formulas():
    """Representative problems from test_solver.py / test_cegar.py."""
    formulas = [
        Eq(x, StrConst("hello")),
        conj([Eq(x, y), Eq(y, StrConst("v"))]),
        conj([Eq(x, StrConst("a")), Eq(x, StrConst("b"))]),
        conj([Eq(x, Undef()), Eq(x, StrConst(""))]),
        disj([Eq(x, StrConst("l")), Eq(x, StrConst("r"))]),
        InRe(x, re_node("a+b")),
        conj([InRe(x, re_node("[ab]+")), neg(InRe(x, re_node("a*")))]),
        conj([InRe(x, re_node("a{2}")), neg(Eq(x, StrConst("aa")))]),
        conj(
            [
                Eq(concat(x, y), StrConst("ab")),
                InRe(x, re_node("a+")),
                InRe(y, re_node("b+")),
            ]
        ),
        neg(InRe(x, re_node("(a|b)*"))),
    ]
    for pattern in [r"^(a+)(b+)$", r"^a*(a)?$", r"(x|y)z"]:
        model = SymbolicRegExp(pattern).exec_model(StrVar("w"))
        formulas.append(model.match_formula)
        formulas.append(model.no_match_formula)
    return formulas


class TestCacheSoundness:
    @pytest.mark.parametrize(
        "index", range(len(_fixture_formulas()))
    )
    def test_cached_equals_uncached(self, index):
        formula = _fixture_formulas()[index]
        plain = Solver().solve(formula)
        cached_solver = CachedSolver(Solver())
        cold = cached_solver.solve(formula)
        warm = cached_solver.solve(formula)  # replay path
        assert cold.status == plain.status == warm.status
        if plain.status == SAT:
            # Models need not be identical objects, but each must satisfy
            # the formula.
            nnf = to_nnf(formula)
            assert _holds(nnf, plain.model)
            assert _holds(nnf, cold.model)
            assert _holds(nnf, warm.model)

    def test_cegar_cached_equals_uncached(self):
        for pattern, subject in [
            (r"^a*(a)?$", "aa"),
            (r"^(a+)(b+)$", None),
            (r"^a$", "b"),
        ]:
            inp = StrVar("w")
            model = SymbolicRegExp(pattern).exec_model(inp)
            problem = model.match_formula
            if subject is not None:
                problem = conj([problem, Eq(inp, StrConst(subject))])
            plain = CegarSolver().solve(problem, [model.constraint])
            shared = QueryCache()
            run1 = CegarSolver(
                solver_factory=lambda: CachedSolver(Solver(), cache=shared)
            ).solve(problem, [model.constraint])
            run2 = CegarSolver(
                solver_factory=lambda: CachedSolver(Solver(), cache=shared)
            ).solve(problem, [model.constraint])
            assert run1.status == plain.status == run2.status
            if plain.status == SAT:
                for outcome in (run1, run2):
                    assert outcome.model[model.captures[0]] == (
                        plain.model[model.captures[0]]
                    )
