"""Property-based tests (hypothesis) on the core invariants.

The central soundness property of the whole system: for any regex in the
supported fragment, an input generated from the *model* (after CEGAR)
must concretely match with *exactly* the capture values the concrete
ES6 matcher produces — and a generated non-member must concretely fail.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model import find_matching_input, find_non_matching_input
from repro.regex import RegExp, parse_regex, unparse_pattern
from repro.regex.errors import RegexError


# -- regex generators ----------------------------------------------------------

_ATOMS = st.sampled_from(
    ["a", "b", "0", "[ab]", "[a-c]", r"\d", r"\w", "."]
)


def _quantify(inner: str) -> st.SearchStrategy:
    return st.sampled_from(["", "*", "+", "?", "{1,2}"]).map(
        lambda q: f"(?:{inner}){q}" if q else inner
    )


@st.composite
def regular_regexes(draw, depth=2):
    """Classical regexes (no captures) of bounded depth."""
    if depth == 0:
        return draw(_ATOMS)
    shape = draw(st.integers(0, 3))
    if shape == 0:
        return draw(_ATOMS)
    if shape == 1:
        left = draw(regular_regexes(depth=depth - 1))
        right = draw(regular_regexes(depth=depth - 1))
        return left + right
    if shape == 2:
        left = draw(regular_regexes(depth=depth - 1))
        right = draw(regular_regexes(depth=depth - 1))
        return f"(?:{left}|{right})"
    inner = draw(regular_regexes(depth=depth - 1))
    return draw(_quantify(inner))


@st.composite
def capture_regexes(draw):
    """Regexes with 1–2 capture groups in solver-friendly shapes."""
    g1 = draw(regular_regexes(depth=1))
    g2 = draw(regular_regexes(depth=1))
    template = draw(
        st.sampled_from(
            [
                "({0})({1})",
                "({0})x({1})",
                "(?:({0})|({1}))y",
                "({0})({1})?",
                "^({0})({1})$",
            ]
        )
    )
    return template.format(g1, g2)


_SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# -- the soundness properties ------------------------------------------------


@given(source=regular_regexes())
@_SLOW
def test_generated_member_matches_concretely(source):
    result = find_matching_input(source)
    if result is None:
        # The bounded solver may give up; it must never give wrong answers.
        return
    word, captures = result
    concrete = RegExp(source).exec(word)
    assert concrete is not None
    assert captures[0] == concrete[0]


@given(source=regular_regexes())
@_SLOW
def test_generated_non_member_fails_concretely(source):
    word = find_non_matching_input(source)
    if word is None:
        return  # e.g. /.*/-like patterns match everything
    assert not RegExp(source).test(word)


@given(source=capture_regexes())
@_SLOW
def test_captures_agree_with_oracle(source):
    result = find_matching_input(source)
    if result is None:
        return
    word, captures = result
    concrete = RegExp(source).exec(word)
    assert concrete is not None, (source, word)
    for index, value in captures.items():
        assert value == concrete[index], (source, word, index)


# -- front-end properties -------------------------------------------------------


@given(source=regular_regexes(), word=st.text(alphabet="ab01x", max_size=5))
@_SLOW
def test_unparse_roundtrip_preserves_matching(source, word):
    pattern = parse_regex(source)
    rendered = unparse_pattern(pattern)
    assert RegExp(f"^(?:{source})$").test(word) == RegExp(
        f"^(?:{rendered})$"
    ).test(word)


@given(word=st.text(alphabet="abc", max_size=8))
@settings(max_examples=60, deadline=None)
def test_matcher_whole_match_is_substring(word):
    regexp = RegExp("b+")
    match = regexp.exec(word)
    if match is not None:
        assert match[0] in word
        assert word[match.index:match.index + len(match[0])] == match[0]


@given(
    word=st.text(alphabet="ab", max_size=6),
    flags=st.sampled_from(["", "i", "m"]),
)
@settings(max_examples=60, deadline=None)
def test_exec_and_test_agree(word, flags):
    for source in (r"(a)(b)?", r"^a", r"b$"):
        r1 = RegExp(source, flags)
        r2 = RegExp(source, flags)
        assert r1.test(word) == (r2.exec(word) is not None)


@given(word=st.text(alphabet="ab-", max_size=6))
@settings(max_examples=60, deadline=None)
def test_stateless_exec_is_idempotent(word):
    regexp = RegExp(r"(a+)|(b+)")
    first = regexp.exec(word)
    second = regexp.exec(word)
    if first is None:
        assert second is None
    else:
        assert list(first) == list(second)


# -- solver properties ------------------------------------------------------------


@given(source=regular_regexes())
@_SLOW
def test_member_and_non_member_are_distinct(source):
    member = find_matching_input(source)
    non_member = find_non_matching_input(source)
    if member is not None and non_member is not None:
        assert member[0] != non_member

@given(st.data())
@settings(max_examples=25, deadline=None)
def test_solver_model_satisfies_membership(data):
    from repro.automata import dfa_for
    from repro.constraints import InRe, StrVar
    from repro.solver import SAT, Solver

    source = data.draw(regular_regexes())
    try:
        node = parse_regex(source).body
    except RegexError:
        return
    var = StrVar("v")
    result = Solver().solve(InRe(var, node))
    if result.status == SAT:
        assert dfa_for(node).accepts_word(result.model[var])
