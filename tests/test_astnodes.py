"""Unit tests for mini-JS AST utilities (coverage denominators)."""

from repro.dse.astnodes import iter_statements
from repro.dse.parser import parse_program


def sids(source):
    program = parse_program(source)
    return sorted(s.sid for s in iter_statements(program)), program


class TestStatementEnumeration:
    def test_flat_program(self):
        found, program = sids("var a = 1; var b = 2; a + b;")
        assert len(found) == 3
        assert program.statement_count == 3

    def test_nested_blocks_counted(self):
        found, program = sids("if (1) { var a = 1; { var b = 2; } }")
        # if + outer block + decl + inner block + decl
        assert len(found) == program.statement_count == 5

    def test_function_bodies_counted(self):
        found, program = sids(
            "function f() { var x = 1; return x; } f();"
        )
        assert len(found) == program.statement_count

    def test_function_expression_bodies_counted(self):
        found, program = sids(
            "var f = function () { var inner = 1; return inner; };"
        )
        assert program.statement_count == len(found)
        assert len(found) >= 4  # decl + body block + 2 inner statements

    def test_loop_bodies(self):
        found, program = sids(
            "for (var i = 0; i < 2; i = i + 1) { var x = i; } "
            "while (0) { var y = 1; }"
        )
        assert len(found) == program.statement_count

    def test_ids_unique_and_dense(self):
        found, program = sids(
            """
            function outer(a) {
                if (a) { return 1; } else { return 2; }
            }
            var r = outer(true) ? outer(false) : 0;
            """
        )
        assert found == list(range(program.statement_count))

    def test_callback_bodies_in_calls(self):
        found, program = sids(
            "register(function (x) { var used = x; return used; });"
        )
        assert len(found) == program.statement_count
        assert len(found) >= 4
