"""Scheduler-level dedup: coalescing identical queued queries."""

from repro.service import (
    AnalyzeJob,
    BatchRunner,
    RunnerConfig,
    SolveJob,
    SurveyJob,
    format_batch_report,
    merge_backend_tallies,
)
from repro.service.runner import _coalesce


class TestDedupKeys:
    def test_solve_key_is_canonical_query_identity(self):
        # Same query, different pattern text: laziness and character-class
        # spelling don't change the canonical model.  (A capturing variant
        # like ``(ab)+`` would *not* coalesce — it adds capture variables,
        # i.e. genuinely asks for more.)
        a = SolveJob(job_id="a", pattern="(?:[a-c]b)+")
        b = SolveJob(job_id="b", pattern="(?:[cba]b)+?")
        assert a.dedup_key() == b.dedup_key()
        assert a.dedup_key() != SolveJob(
            job_id="c", pattern="([a-c]b)+"
        ).dedup_key()

    def test_solve_key_distinguishes_polarity_and_bounds(self):
        base = SolveJob(job_id="a", pattern="a+b")
        assert base.dedup_key() != SolveJob(
            job_id="b", pattern="a+b", negate=True
        ).dedup_key()
        assert base.dedup_key() != SolveJob(
            job_id="c", pattern="a+b", solver_timeout=9.0
        ).dedup_key()
        assert base.dedup_key() != SolveJob(
            job_id="d", pattern="a+b", backend="cached:native"
        ).dedup_key()

    def test_unparsable_pattern_never_coalesces(self):
        bad = SolveJob(job_id="a", pattern="(")
        assert bad.dedup_key() is None
        unique, assignment = _coalesce(
            [bad, SolveJob(job_id="b", pattern="(")]
        )
        assert len(unique) == 2
        assert assignment == [0, 1]

    def test_analyze_key_covers_config(self):
        src = 'var s = symbol("s", "");\nif (/a+/.test(s)) { 1; }\n'
        a = AnalyzeJob(job_id="a", source=src, max_tests=4)
        b = AnalyzeJob(job_id="b", source=src, max_tests=4)
        c = AnalyzeJob(job_id="c", source=src, max_tests=5)
        assert a.dedup_key() == b.dedup_key()
        assert a.dedup_key() != c.dedup_key()

    def test_survey_jobs_never_coalesce(self):
        job = SurveyJob(job_id="v", package_files=[["var r = /a/;"]])
        assert job.dedup_key() is None


class TestBatchDedup:
    def duplicated_jobs(self):
        # 6 submitted, 2 unique canonical queries.
        return [
            SolveJob(job_id=f"x{i}", pattern="a+b") for i in range(3)
        ] + [
            SolveJob(job_id=f"y{i}", pattern="[0-9]{2}") for i in range(3)
        ]

    def test_fewer_native_solves_than_jobs_submitted(self):
        jobs = self.duplicated_jobs()
        report = BatchRunner(RunnerConfig(workers=0, dedup=True)).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert report.jobs_submitted == 6
        assert report.jobs_executed == 2
        assert report.jobs_coalesced == 4
        tallies = merge_backend_tallies(report.results)
        native_queries = sum(t["queries"] for t in tallies.values())
        # 2 single-flight executions answered all 6 jobs.
        assert 0 < native_queries < len(jobs)

    def test_coalesced_results_replay_the_representative(self):
        jobs = self.duplicated_jobs()
        report = BatchRunner(RunnerConfig(workers=0, dedup=True)).run(jobs)
        assert [r.job_id for r in report.results] == [
            j.job_id for j in jobs
        ]
        replayed = [
            r for r in report.results if "deduped_from" in r.payload
        ]
        assert len(replayed) == 4
        for result in replayed:
            assert result.payload["found"] is True
            assert result.payload["word"]
            assert result.payload["solver_queries"] == 0
            assert result.seconds == 0.0

    def test_dedup_counters_in_report_text_and_spec(self):
        jobs = self.duplicated_jobs()
        report = BatchRunner(RunnerConfig(workers=0, dedup=True)).run(jobs)
        spec = report.to_spec()
        assert spec["dedup"] == {
            "submitted": 6,
            "executed": 2,
            "coalesced": 4,
        }
        text = format_batch_report(report)
        assert "dedup:       6 submitted, 2 executed, 4 coalesced" in text

    def test_disabled_by_default(self):
        jobs = self.duplicated_jobs()
        report = BatchRunner(RunnerConfig(workers=0)).run(jobs)
        assert report.jobs_executed == 6
        assert report.jobs_coalesced == 0
        assert not any(
            "deduped_from" in r.payload for r in report.results
        )

    def test_dedup_across_pool_workers(self):
        jobs = self.duplicated_jobs()
        report = BatchRunner(
            RunnerConfig(workers=2, dedup=True, job_timeout=120.0)
        ).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert report.jobs_executed == 2
        assert [r.job_id for r in report.results] == [
            j.job_id for j in jobs
        ]

    def test_coalesced_analyze_results_keep_their_own_name(self):
        src = 'var s = symbol("s", "");\nif (/a+/.test(s)) { 1; }\n'
        jobs = [
            AnalyzeJob(job_id="a0", source=src, path="a.js", max_tests=4),
            AnalyzeJob(job_id="a1", source=src, path="b.js", max_tests=4),
        ]
        report = BatchRunner(RunnerConfig(workers=0, dedup=True)).run(jobs)
        assert report.jobs_executed == 1
        assert [r.payload["name"] for r in report.results] == [
            "a.js",
            "b.js",
        ]

    def test_error_results_fan_out_too(self):
        jobs = [
            AnalyzeJob(job_id="bad0", source="var = = ;"),
            AnalyzeJob(job_id="bad1", source="var = = ;"),
        ]
        report = BatchRunner(RunnerConfig(workers=0, dedup=True)).run(jobs)
        assert report.jobs_executed == 1
        assert [r.status for r in report.results] == ["error", "error"]
        assert report.results[0].error == report.results[1].error
