"""Unit tests for the mini-JS lexer and parser."""

import pytest

from repro.dse import astnodes as js
from repro.dse.lexer import MiniJsSyntaxError, tokenize
from repro.dse.parser import parse_program


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("var x = 1;")]
        assert kinds == ["keyword", "ident", "punct", "number", "punct", "eof"]

    def test_string_escapes(self):
        tokens = tokenize(r"'a\nb\tA'")
        assert tokens[0].value == "a\nb\tA"

    def test_comments_skipped(self):
        tokens = tokenize("a // line\n/* block\nmore */ b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_regex_literal_detection(self):
        tokens = tokenize("x = /ab+c/gi;")
        regex = [t for t in tokens if t.kind == "regex"]
        assert len(regex) == 1
        assert regex[0].value == "ab+c" and regex[0].flags == "gi"

    def test_division_vs_regex(self):
        tokens = tokenize("a / b / c")
        assert not any(t.kind == "regex" for t in tokens)

    def test_regex_after_paren_is_division(self):
        tokens = tokenize("(a) / 2")
        assert not any(t.kind == "regex" for t in tokens)

    def test_regex_with_class_containing_slash(self):
        tokens = tokenize("x = /[/]/")
        regex = [t for t in tokens if t.kind == "regex"]
        assert regex and regex[0].value == "[/]"

    def test_unterminated_string(self):
        with pytest.raises(MiniJsSyntaxError):
            tokenize("'abc")

    def test_multi_char_punctuation(self):
        values = [t.value for t in tokenize("a === b !== c && d")]
        assert "===" in values and "!==" in values and "&&" in values


class TestParser:
    def test_var_decl(self):
        program = parse_program("var x = 5;")
        decl = program.body[0]
        assert isinstance(decl, js.VarDecl) and decl.name == "x"

    def test_statement_ids_are_unique(self):
        program = parse_program(
            "var a = 1; if (a) { a = 2; } else { a = 3; } while (a) { a = 0; }"
        )
        sids = [s.sid for s in js.iter_statements(program)]
        assert len(sids) == len(set(sids))
        assert program.statement_count == len(sids)

    def test_function_decl_and_call(self):
        program = parse_program("function f(a, b) { return a; } f(1, 2);")
        fn = program.body[0]
        assert isinstance(fn, js.FunctionDecl)
        assert fn.params == ["a", "b"]

    def test_precedence(self):
        program = parse_program("x = 1 + 2 * 3;")
        assign = program.body[0].expr
        assert isinstance(assign.value, js.Binary)
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_comparison_chain(self):
        program = parse_program("a === b && c !== d;")
        expr = program.body[0].expr
        assert expr.op == "&&"

    def test_member_and_index(self):
        program = parse_program("a.b.c[0];")
        expr = program.body[0].expr
        assert isinstance(expr, js.Index)
        assert isinstance(expr.obj, js.Member)

    def test_regex_literal_expression(self):
        program = parse_program("var r = /a+/g;")
        assert isinstance(program.body[0].init, js.RegexLiteral)

    def test_object_and_array_literals(self):
        program = parse_program("var o = {a: 1, b: [1, 2]};")
        obj = program.body[0].init
        assert isinstance(obj, js.ObjectLiteral)
        assert obj.entries[0][0] == "a"

    def test_for_loop(self):
        program = parse_program(
            "for (var i = 0; i < 10; i = i + 1) { i; }"
        )
        loop = program.body[0]
        assert isinstance(loop, js.For)
        assert loop.test is not None and loop.update is not None

    def test_ternary(self):
        program = parse_program("var x = a ? 1 : 2;")
        assert isinstance(program.body[0].init, js.Conditional)

    def test_new_expression(self):
        program = parse_program('var r = new RegExp("a", "g");')
        assert isinstance(program.body[0].init, js.New)

    def test_error_on_bad_assignment(self):
        with pytest.raises(MiniJsSyntaxError):
            parse_program("1 = 2;")

    def test_error_on_unterminated_block(self):
        with pytest.raises(MiniJsSyntaxError):
            parse_program("if (a) {")
