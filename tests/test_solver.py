"""Unit tests for the string constraint solver."""

import pytest

from repro.constraints import (
    Eq,
    FALSE,
    InRe,
    Not,
    StrConst,
    StrVar,
    TRUE,
    UNDEF,
    Undef,
    concat,
    conj,
    disj,
    implies,
    neg,
    to_nnf,
)
from repro.regex import parse_regex
from repro.solver import SAT, Solver, UNKNOWN, UNSAT


def re_node(src):
    return parse_regex(src).body


def solve(formula, **kwargs):
    return Solver(**kwargs).solve(formula)


x, y, z, w = (StrVar(n) for n in "xyzw")


class TestDefaultWords:
    def test_candidate_list_is_pinned(self):
        # The documented candidate pool for wholly unconstrained
        # variables: the seed alphabet followed by "a"-runs of length 2-5.
        expected = [
            "", "a", "b", "0", "1", " ", "x", "ab", "a0", "-",
            "aa", "aaa", "aaaa", "aaaaa",
        ]
        assert Solver().default_words(len(expected) + 10) == expected

    def test_limit_truncates(self):
        solver = Solver()
        assert solver.default_words(3) == ["", "a", "b"]
        assert solver.default_words(14) == solver.default_words(100)


class TestEqualities:
    def test_var_equals_const(self):
        result = solve(Eq(x, StrConst("hello")))
        assert result.status == SAT
        assert result.model[x] == "hello"

    def test_var_equals_var(self):
        result = solve(conj([Eq(x, y), Eq(y, StrConst("v"))]))
        assert result.model[x] == "v"

    def test_conflicting_constants(self):
        result = solve(conj([Eq(x, StrConst("a")), Eq(x, StrConst("b"))]))
        assert result.status == UNSAT

    def test_transitive_conflict(self):
        result = solve(
            conj(
                [
                    Eq(x, y),
                    Eq(y, z),
                    Eq(x, StrConst("a")),
                    Eq(z, StrConst("b")),
                ]
            )
        )
        assert result.status == UNSAT

    def test_const_const(self):
        assert solve(Eq(StrConst("a"), StrConst("a"))).status == SAT
        assert solve(Eq(StrConst("a"), StrConst("b"))).status == UNSAT


class TestUndef:
    def test_var_can_be_undef(self):
        result = solve(Eq(x, Undef()))
        assert result.status == SAT
        assert result.model[x] is UNDEF

    def test_undef_conflicts_with_const(self):
        result = solve(conj([Eq(x, Undef()), Eq(x, StrConst(""))]))
        assert result.status == UNSAT

    def test_undef_distinct_from_empty(self):
        result = solve(conj([Eq(x, StrConst("")), Not(Eq(x, Undef()))]))
        assert result.status == SAT
        assert result.model[x] == ""

    def test_undef_conflicts_with_membership(self):
        result = solve(conj([Eq(x, Undef()), InRe(x, re_node("a*"))]))
        assert result.status == UNSAT

    def test_undef_cannot_be_concatenated(self):
        result = solve(conj([Eq(x, Undef()), Eq(y, concat(x, StrConst("a")))]))
        assert result.status == UNSAT


class TestMemberships:
    def test_simple_membership(self):
        result = solve(InRe(x, re_node("abc")))
        assert result.model[x] == "abc"

    def test_membership_intersection(self):
        result = solve(
            conj([InRe(x, re_node("a*b*")), InRe(x, re_node(".{2}"))])
        )
        assert result.status == SAT
        assert len(result.model[x]) == 2
        value = result.model[x]
        assert value in ("ab", "aa", "bb")

    def test_empty_intersection_unsat(self):
        result = solve(conj([InRe(x, re_node("a+")), InRe(x, re_node("b+"))]))
        assert result.status == UNSAT

    def test_negative_membership(self):
        result = solve(
            conj([InRe(x, re_node("a{0,2}")), Not(InRe(x, re_node("a?")))])
        )
        assert result.status == SAT
        assert result.model[x] == "aa"

    def test_membership_of_constant(self):
        assert solve(InRe(StrConst("aaa"), re_node("a+"))).status == SAT
        assert solve(InRe(StrConst("b"), re_node("a+"))).status == UNSAT

    def test_negated_membership_of_constant(self):
        assert solve(Not(InRe(StrConst("b"), re_node("a+")))).status == SAT

    def test_membership_with_equality(self):
        result = solve(
            conj([Eq(x, StrConst("ab")), InRe(x, re_node("a.|c"))])
        )
        assert result.status == SAT


class TestConcatenation:
    def test_concat_definition(self):
        formula = conj(
            [
                Eq(w, concat(x, y)),
                Eq(x, StrConst("foo")),
                Eq(y, StrConst("bar")),
            ]
        )
        result = solve(formula)
        assert result.model[w] == "foobar"

    def test_concat_with_membership_on_parts(self):
        formula = conj(
            [
                Eq(w, concat(x, y)),
                InRe(x, re_node("a+")),
                InRe(y, re_node("b+")),
                InRe(w, re_node(".{4}")),
            ]
        )
        result = solve(formula)
        assert result.status == SAT
        value = result.model[w]
        assert len(value) == 4 and value.strip("ab") == ""
        assert value.startswith("a") and value.endswith("b")

    def test_concat_chain(self):
        formula = conj(
            [
                Eq(w, concat(x, y, z)),
                Eq(x, StrConst("<")),
                InRe(y, re_node(r"\w+")),
                Eq(z, StrConst(">")),
                Eq(w, StrConst("<tag>")),
            ]
        )
        result = solve(formula)
        assert result.status == SAT
        assert result.model[y] == "tag"

    def test_concat_conflict(self):
        formula = conj(
            [
                Eq(w, concat(x, y)),
                Eq(x, StrConst("aa")),
                Eq(y, StrConst("bb")),
                Eq(w, StrConst("aabc")),
            ]
        )
        assert solve(formula).status in (UNSAT, UNKNOWN)

    def test_nested_definitions(self):
        formula = conj(
            [
                Eq(w, concat(x, y)),
                Eq(x, concat(z, StrConst("-"))),
                Eq(z, StrConst("id")),
                Eq(y, StrConst("42")),
            ]
        )
        result = solve(formula)
        assert result.model[w] == "id-42"


class TestBooleanStructure:
    def test_disjunction_picks_satisfiable_branch(self):
        formula = disj(
            [
                conj([Eq(x, StrConst("a")), Eq(x, StrConst("b"))]),  # unsat
                Eq(x, StrConst("c")),
            ]
        )
        result = solve(formula)
        assert result.model[x] == "c"

    def test_implication(self):
        formula = conj(
            [
                Eq(x, StrConst("k")),
                implies(Eq(x, StrConst("k")), Eq(y, StrConst("v"))),
            ]
        )
        result = solve(formula)
        assert result.model[y] == "v"

    def test_implication_vacuous(self):
        formula = conj(
            [
                Eq(x, StrConst("other")),
                implies(Eq(x, StrConst("k")), Eq(y, StrConst("v"))),
            ]
        )
        result = solve(formula)
        assert result.status == SAT

    def test_negated_equality(self):
        formula = conj([InRe(x, re_node("a|b")), Not(Eq(x, StrConst("a")))])
        result = solve(formula)
        assert result.model[x] == "b"

    def test_true_false_literals(self):
        assert solve(TRUE).status == SAT
        assert solve(FALSE).status == UNSAT
        assert solve(conj([Eq(x, StrConst("a")), FALSE])).status == UNSAT

    def test_nnf_double_negation(self):
        formula = Not(Not(Eq(x, StrConst("a"))))
        assert solve(formula).model[x] == "a"


class TestRefinementShapedConstraints:
    """The exact shapes Algorithm 1 adds during CEGAR."""

    def test_word_exclusion(self):
        # P ∧ (w ≠ M[w]) — the non-membership refinement (line 18/22).
        formula = conj(
            [
                InRe(x, re_node("a{0,3}")),
                Not(Eq(x, StrConst(""))),
                Not(Eq(x, StrConst("a"))),
                Not(Eq(x, StrConst("aa"))),
            ]
        )
        result = solve(formula)
        assert result.model[x] == "aaa"

    def test_capture_pinning(self):
        # P ∧ (w = M[w] ⟹ Ci = Ci♮) — the membership refinement (line 15).
        c = StrVar("C1")
        formula = conj(
            [
                Eq(x, StrConst("aa")),
                implies(Eq(x, StrConst("aa")), Eq(c, StrConst(""))),
            ]
        )
        result = solve(formula)
        assert result.model[c] == ""

    def test_exclusions_exhaust_finite_language(self):
        formula = conj(
            [
                InRe(x, re_node("a|b")),
                Not(Eq(x, StrConst("a"))),
                Not(Eq(x, StrConst("b"))),
            ]
        )
        assert solve(formula).status == UNSAT


class TestSolverLimits:
    def test_unknown_on_tiny_budget(self):
        # An adversarial constraint needing a longer word than one round
        # allows; with absurd budgets the solver must answer UNKNOWN, not
        # UNSAT.
        formula = conj(
            [
                InRe(x, re_node("a*")),
                Not(InRe(x, re_node("a{0,40}"))),
            ]
        )
        result = Solver(round_limits=[2], combo_budget=4).solve(formula)
        assert result.status in (UNKNOWN, SAT)

    def test_finds_long_word_with_budget(self):
        formula = conj(
            [InRe(x, re_node("a*")), Not(InRe(x, re_node("a{0,10}")))]
        )
        result = solve(formula)
        assert result.status == SAT
        assert result.model[x] == "a" * 11

    def test_stats_recorded(self):
        from repro.solver import SolverStats

        stats = SolverStats()
        Solver(stats=stats).solve(Eq(x, StrConst("a")))
        assert len(stats.queries) == 1
        assert stats.queries[0].status == SAT
