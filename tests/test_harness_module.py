"""Unit tests for the automatic library harness (§7.3)."""

import pytest

from repro.dse.harness import build_harness, discover_exports


class TestDiscovery:
    def test_multiple_exports_with_arities(self):
        exports = dict(
            discover_exports(
                """
                module.exports = {
                    one: function (a) { return a; },
                    two: function (a, b) { return a; },
                    zero: function () { return 1; }
                };
                """
            )
        )
        assert exports == {"one": 1, "two": 2, "zero": 0}

    def test_non_function_exports_skipped(self):
        exports = discover_exports(
            """
            module.exports = {
                version: "1.0.0",
                f: function (x) { return x; }
            };
            """
        )
        assert exports == [("f", 1)]

    def test_function_as_default_export(self):
        assert discover_exports(
            "module.exports = function (a, b, c) { return a; };"
        ) == [("", 3)]

    def test_no_exports(self):
        assert discover_exports("var x = 1;") == []

    def test_discovery_survives_runtime_error(self):
        # A library that throws at import time still yields no exports
        # rather than crashing the harness.
        assert discover_exports("throw 'setup failed';") == []


class TestDriverGeneration:
    def test_driver_calls_each_export(self):
        harnessed = build_harness(
            """
            module.exports = {
                parse: function (s) { return s; },
                fmt: function (a, b) { return a; }
            };
            """
        )
        assert 'module.exports.parse(symbol("parse_arg0", ""));' in harnessed
        assert "fmt_arg0" in harnessed and "fmt_arg1" in harnessed

    def test_zero_arity_still_gets_one_symbol(self):
        harnessed = build_harness(
            "module.exports = {f: function () { return 1; }};"
        )
        assert "f_arg0" in harnessed

    def test_default_export_call(self):
        harnessed = build_harness(
            "module.exports = function (x) { return x; };"
        )
        assert "module.exports(symbol(" in harnessed

    def test_library_without_exports_unchanged(self):
        source = "var internal = 1;\n"
        assert build_harness(source) == source

    def test_generated_driver_parses(self):
        from repro.dse.parser import parse_program

        harnessed = build_harness(
            "module.exports = {go: function (s) { return s + '!'; }};"
        )
        program = parse_program(harnessed)
        assert program.statement_count > 0
