"""Tests for the SMT-LIB subprocess backend and the printer round trip.

No real z3/cvc5 is assumed: subprocess plumbing is exercised with fake
solver executables (shell scripts printing canned SMT-LIB output), and
everything else must degrade to UNKNOWN — never crash, never lie.
"""

import os
import stat

import pytest

from repro.automata.build import erase_captures
from repro.constraints import Eq, InRe, Not, StrConst, StrVar, conj
from repro.constraints.printer import _string_literal, to_smtlib
from repro.constraints.terms import Concat, UNDEF, Undef
from repro.regex import parse_regex
from repro.solver import SAT, UNKNOWN, UNSAT
from repro.solver.backends import SmtLibBackend, make_backend
from repro.solver.backends.smtlib import (
    build_model,
    parse_solver_output,
    unescape_smtlib_string,
)


def membership(pattern: str, var_name: str = "x"):
    node = erase_captures(parse_regex(pattern, "").body)
    return InRe(StrVar(var_name), node)


def fake_solver(tmp_path, stdout: str, name: str = "fakesolver"):
    """Create an executable that ignores its input and prints ``stdout``."""
    path = tmp_path / name
    path.write_text("#!/bin/sh\ncat <<'SMTEOF'\n" + stdout + "\nSMTEOF\n")
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class TestStringLiteralEscaping:
    """Satellite: SMT-LIB 2.6 ``\\u{...}`` escaping, round-tripped."""

    CASES = [
        "",
        "plain ascii",
        'quote " inside',
        "back\\slash",
        "\\u{41}",  # literal text that *looks* like an escape
        "tab\tnewline\nbell\x07",
        "unicode: é π 🎉",
        "\x00\x1f\x7f",
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_round_trip_through_model_parser(self, value):
        literal = _string_literal(value)
        assert literal.startswith('"') and literal.endswith('"')
        assert unescape_smtlib_string(literal[1:-1]) == value

    def test_backslash_is_never_printed_raw(self):
        # A raw backslash before 'u' would be re-read as an escape.
        assert "\\" not in _string_literal("a\\ub").replace("\\u{5c}", "")

    def test_control_and_non_ascii_use_brace_form(self):
        assert _string_literal("\n") == '"\\u{a}"'
        assert _string_literal("é") == '"\\u{e9}"'

    def test_four_hex_legacy_form_also_parses(self):
        assert unescape_smtlib_string("\\u0041") == "A"


class TestScriptRendering:
    def test_guarded_script_carries_def_guards(self):
        x = StrVar("x")
        script = to_smtlib(
            conj([membership("a+b"), Eq(x, StrConst("ab"))]),
            guarded=True,
            get_values=True,
        )
        assert "(set-option :produce-models true)" in script
        assert "(and x.def (str.in_re x " in script
        assert "(and x.def (= x " in script
        assert "(get-value (x x.def))" in script

    def test_unguarded_script_is_unchanged_for_inspection(self):
        script = to_smtlib(membership("a+b"))
        assert "x.def (str.in_re" not in script
        assert script.endswith("(check-sat)")

    def test_guarded_concat_equality_guards_all_vars(self):
        x, y = StrVar("x"), StrVar("y")
        body = to_smtlib(
            Eq(Concat((x, y)), StrConst("ab")), declare=False, guarded=True
        )
        assert body.startswith("(and x.def y.def (= (str.++ x y)")

    def test_undef_equality_still_def_aware(self):
        x = StrVar("x")
        assert (
            to_smtlib(Eq(x, Undef()), declare=False, guarded=True)
            == "(not x.def)"
        )


class TestOutputParsing:
    def test_verdict_and_values(self):
        status, values = parse_solver_output(
            'sat\n((x "ab")\n (x.def true)\n (|y!0| "")\n (|y!0.def| false))'
        )
        assert status == SAT
        assert values["x"] == "ab"
        assert values["x.def"] == "true"
        assert values["y!0.def"] == "false"

    def test_string_values_cannot_spoof_the_verdict(self):
        status, values = parse_solver_output('unsat\n((x "sat"))')
        assert status == UNSAT
        assert values["x"] == "sat"

    def test_errors_and_garbage_are_ignored(self):
        status, _ = parse_solver_output(
            '(error "model is not available")\nunknown\n<<<garbage'
        )
        assert status == UNKNOWN

    def test_parens_inside_strings_do_not_unbalance(self):
        status, values = parse_solver_output('sat\n((x "(("))')
        assert status == SAT
        assert values["x"] == "(("

    def test_build_model_maps_def_false_to_undef(self):
        x, y = StrVar("x"), StrVar("y")
        formula = conj([Eq(x, StrConst("ab")), Eq(y, Undef())])
        model = build_model(
            formula,
            {"x": "ab", "x.def": "true", "y": "", "y.def": "false"},
        )
        assert model[x] == "ab"
        assert model[y] is UNDEF


class TestSubprocessBackend:
    def test_missing_binary_degrades_to_unknown(self):
        backend = SmtLibBackend("no-such-solver-exists")
        result = backend.solve(membership("a+b"))
        assert result.status == UNKNOWN
        assert backend.last_error

    def test_sat_with_valid_model_is_accepted(self, tmp_path):
        cmd = fake_solver(
            tmp_path, 'sat\n((x "aab") (x.def true))'
        )
        backend = make_backend(f"smtlib:{cmd}")
        result = backend.solve(membership("a+b"))
        assert result.status == SAT
        assert result.model[StrVar("x")] == "aab"

    def test_sat_with_bogus_model_degrades_to_unknown(self, tmp_path):
        cmd = fake_solver(
            tmp_path, 'sat\n((x "zzz") (x.def true))'
        )
        backend = SmtLibBackend(cmd)
        result = backend.solve(membership("a+b"))
        assert result.status == UNKNOWN
        assert "re-validation" in backend.last_error

    def test_unsat_is_trusted(self, tmp_path):
        cmd = fake_solver(tmp_path, "unsat")
        backend = SmtLibBackend(cmd)
        assert backend.solve(membership("a+b")).status == UNSAT

    def test_unknown_and_garbage_degrade(self, tmp_path):
        for stdout in ("unknown", "segfault lol", ""):
            backend = SmtLibBackend(fake_solver(tmp_path, stdout))
            assert backend.solve(membership("a")).status == UNKNOWN

    def test_escaped_model_value_round_trips(self, tmp_path):
        # The fake solver answers with an escaped literal; the parsed
        # model must contain the decoded string.
        cmd = fake_solver(
            tmp_path, 'sat\n((x "a\\u{5c}b") (x.def true))'
        )
        backend = SmtLibBackend(cmd)
        formula = Eq(StrVar("x"), StrConst("a\\b"))
        result = backend.solve(formula)
        assert result.status == SAT
        assert result.model[StrVar("x")] == "a\\b"

    def test_nonclassical_fragment_degrades_before_subprocess(self, tmp_path):
        # Lookaheads have no classical SMT-LIB regex form; the backend
        # must bail out (UNKNOWN) without even invoking the binary.
        backend = SmtLibBackend(fake_solver(tmp_path, "sat"))
        formula = InRe(StrVar("x"), parse_regex("(?=a)a", "").body)
        assert backend.solve(formula).status == UNKNOWN
        assert "unprintable" in backend.last_error

    def test_tallies_recorded(self, tmp_path):
        from repro.solver import SolverStats

        stats = SolverStats()
        cmd = fake_solver(tmp_path, "unsat")
        backend = SmtLibBackend(cmd, stats=stats)
        backend.solve(membership("a"))
        name = f"smtlib:{cmd}"
        assert stats.backend_tallies[name].unsat == 1
