"""Unit tests for the symbolic RegExp API (Algorithm 2, §6.1)."""

import pytest

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model.api import (
    SymbolicRegExp,
    _strip_edge_anchors,
    find_matching_input,
)
from repro.model.cegar import CegarSolver
from repro.regex import RegExp, parse_regex
from repro.regex.ast import Anchor, Concat
from repro.solver import SAT, Solver


class TestAnchorStripping:
    def test_both_anchors(self):
        body = parse_regex("^abc$").body
        stripped, start, end = _strip_edge_anchors(body, multiline=False)
        assert start and end
        assert not any(
            isinstance(n, Anchor)
            for n in __import__("repro.regex.ast", fromlist=["walk"]).walk(
                stripped
            )
        )

    def test_leading_only(self):
        body = parse_regex("^abc").body
        stripped, start, end = _strip_edge_anchors(body, multiline=False)
        assert start and not end

    def test_no_anchors_untouched(self):
        body = parse_regex("abc").body
        stripped, start, end = _strip_edge_anchors(body, multiline=False)
        assert stripped is body and not start and not end

    def test_multiline_disables_stripping(self):
        body = parse_regex("^abc$").body
        stripped, start, end = _strip_edge_anchors(body, multiline=True)
        assert not start and not end

    def test_inner_anchor_not_stripped(self):
        body = parse_regex("a|^b").body
        stripped, start, end = _strip_edge_anchors(body, multiline=False)
        assert not start and not end


class TestExecModel:
    def test_captures_cover_all_groups(self):
        regexp = SymbolicRegExp(r"(a)(b(c))")
        model = regexp.exec_model(StrVar("s"))
        assert sorted(model.captures) == [0, 1, 2, 3]

    def test_fresh_variables_per_call(self):
        regexp = SymbolicRegExp(r"(a)")
        first = regexp.exec_model(StrVar("s"))
        second = regexp.exec_model(StrVar("s"))
        assert first.captures[1] != second.captures[1]

    def test_constraint_metadata(self):
        regexp = SymbolicRegExp(r"(x)", "gi")
        model = regexp.exec_model(StrVar("s"))
        assert model.constraint.source == "(x)"
        assert model.constraint.flags == "gi"
        assert model.constraint.positive
        assert not model.negative_constraint.positive

    def test_whole_match_property(self):
        regexp = SymbolicRegExp(r"ab")
        model = regexp.exec_model(StrVar("s"))
        assert model.whole_match == model.captures[0]

    def test_meta_characters_never_in_solutions(self):
        regexp = SymbolicRegExp(r"a.*b")
        inp = StrVar("s")
        model = regexp.exec_model(inp)
        result = Solver().solve(model.match_formula)
        assert result.status == SAT
        word = result.model.eval_term(inp)
        assert "〈" not in word and "〉" not in word


class TestConcreteTwin:
    def test_exec_delegates(self):
        regexp = SymbolicRegExp(r"(o+)")
        assert list(regexp.exec("good")) == ["oo", "oo"]

    def test_test_delegates(self):
        assert SymbolicRegExp("a").test("cat")
        assert not SymbolicRegExp("z").test("cat")

    def test_global_state_shared(self):
        regexp = SymbolicRegExp(r"\d", "g")
        assert regexp.exec("1a2")[0] == "1"
        assert regexp.exec("1a2")[0] == "2"
        assert regexp.last_index == 3


class TestWholeMatchSemantics:
    def test_c0_matches_concrete_whole_match(self):
        word, captures = find_matching_input(r"o+d")
        concrete = RegExp(r"o+d").exec(word)
        assert captures[0] == concrete[0]

    def test_unanchored_word_can_have_context(self):
        # The wrapper wildcards allow material around the match.
        regexp = SymbolicRegExp(r"core")
        inp = StrVar("s")
        model = regexp.exec_model(inp)
        problem = conj(
            [model.match_formula, Eq(inp, StrConst("xxcoreyy"))]
        )
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT
        assert result.model[model.captures[0]] == "core"

    def test_sticky_model_requires_match_at_start(self):
        regexp = SymbolicRegExp(r"ab", "y")
        inp = StrVar("s")
        model = regexp.exec_model(inp)
        # "xab" matches unanchored but NOT at lastIndex=0 under sticky.
        problem = conj([model.match_formula, Eq(inp, StrConst("xab"))])
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status != SAT
        # "abx" does match at position 0.
        problem = conj([model.match_formula, Eq(inp, StrConst("abx"))])
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT


class TestIgnoreCaseModel:
    def test_case_folded_generation(self):
        regexp = SymbolicRegExp("abc", "i")
        inp = StrVar("s")
        model = regexp.exec_model(inp)
        result = CegarSolver().solve(model.match_formula, [model.constraint])
        assert result.status == SAT
        word = result.model.eval_term(inp)
        assert RegExp("abc", "i").test(word)


class TestMultilineModel:
    def test_multiline_anchor_allows_mid_string(self):
        regexp = SymbolicRegExp("^b$", "m")
        inp = StrVar("s")
        model = regexp.exec_model(inp)
        problem = conj([model.match_formula, Eq(inp, StrConst("a\nb"))])
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT
