"""Conformance fuzzing: generator, oracle, triage, store, job, serve.

The pinned honest-stack corpus (seed 1909) is the suite's soundness
trip-wire: the concrete matcher and the native solver must agree on
every generated pair, under the oracle's direction-aware rules.  The
``planted:`` backend — deliberately unsound, flips SAT to UNSAT when
the pinned word contains ``q`` — exercises the whole find → shrink →
dedupe → persist → report pipeline against a known bug.
"""

import json
import os

import pytest

from repro.conformance import (
    ArtifactStore,
    DifferentialOracle,
    DisagreementArtifact,
    NotADisagreement,
    TriagePipeline,
    artifact_fingerprint,
    coverage_summary,
    generate_pairs,
    register_planted_backend,
    shrink_disagreement,
)
from repro.conformance.oracle import MATCH, NOMATCH, UNDECIDED
from repro.regex.matcher import RegExp
from repro.solver.backends.base import (
    BackendDisagreement,
    SolverBackend,
)
from repro.solver.core import SAT, UNKNOWN, UNSAT, SolverResult
from repro.solver.stats import SolverStats

#: One oracle timeout for the whole suite — generous enough that the
#: pinned corpus never times out, small enough to keep the suite quick.
TIMEOUT = 1.0


# -- generator ----------------------------------------------------------------


class TestGenerator:
    def test_deterministic_in_seed(self):
        assert generate_pairs(10, seed=3) == generate_pairs(10, seed=3)
        assert generate_pairs(10, seed=3) != generate_pairs(10, seed=4)

    def test_offset_sharding_is_exact(self):
        whole = generate_pairs(15, seed=5)
        sharded = (
            generate_pairs(6, seed=5, offset=0)
            + generate_pairs(6, seed=5, offset=6)
            + generate_pairs(3, seed=5, offset=12)
        )
        assert whole == sharded

    def test_patterns_are_valid(self):
        for pair in generate_pairs(30, seed=11):
            RegExp(pair.pattern, pair.flags)  # must not raise

    def test_inputs_are_bounded_and_meta_free(self):
        from repro.model.preprocess import META_END, META_START

        for pair in generate_pairs(30, seed=11):
            assert pair.inputs
            for word in pair.inputs:
                assert len(word) <= 12
                assert META_START not in word and META_END not in word

    def test_coverage_weighted_toward_hard_features(self):
        summary = coverage_summary(generate_pairs(40, seed=1909))
        assert summary["pairs"] == 40
        for feature in (
            "sticky",
            "unicode",
            "named_groups",
            "backrefs",
            "lookaheads",
            "corpus",
        ):
            assert summary[feature] > 0, feature


# -- oracle -------------------------------------------------------------------


class _FixedBackend(SolverBackend):
    """Answers every query with one fixed status (oracle stubs)."""

    def __init__(self, status, name="fixed"):
        super().__init__(None)
        self.status = status
        self.name = name

    def solve(self, formula):
        return SolverResult(self.status)


class TestOracle:
    def test_honest_pinned_corpus_never_disagrees(self):
        """The seed-1909 corpus: matcher and native solver agree."""
        oracle = DifferentialOracle(["native"], timeout=TIMEOUT)
        for pair in generate_pairs(10, seed=1909):
            oracle.check_pair(pair)
        assert oracle.counters["checks"] > 20
        assert oracle.counters["disagreements"] == 0

    def test_sticky_unicode_named_and_matchall_features(self):
        """Hand-picked feature triples: verdicts line up both ways."""
        from repro.regex.methods import match_all

        oracle = DifferentialOracle(["native"], timeout=TIMEOUT)
        cases = [
            ("(?<w>a+)b", "", "aab"),  # named group, matching
            ("(?<w>a+)b", "", "abc"),  # named group, matching prefix
            (r"(ab)\1", "", "abab"),  # backreference
            (r"(ab)\1", "", "abxb"),  # backreference, no match
            ("a.", "y", "ab"),  # sticky anchors at index 0
            ("b.", "y", "ab"),  # sticky miss (b not at 0)
            ("ab", "u", "ab"),  # unicode mode
            ("a|q", "iu", "Q"),  # case folding under u
        ]
        for pattern, flags, word in cases:
            outcome = oracle.check(pattern, flags, word)
            assert outcome is not None, (pattern, flags, word)
            assert outcome.disagreement is None, outcome
            expected = MATCH if RegExp(pattern, flags).exec(
                word
            ) is not None else NOMATCH
            assert outcome.verdicts["matcher"] == expected
        # matchAll end-to-end: every substring matchAll yields is a
        # word the oracle's membership check must also call a match.
        regexp = RegExp("(?<w>a+)", "g")
        found = [m[0] for m in match_all(regexp, "aa b aaa")]
        assert found == ["aa", "aaa"]
        for word in found:
            outcome = oracle.check("^(?<w>a+)$", "", word)
            assert outcome.verdicts["matcher"] == MATCH
            assert outcome.disagreement is None

    def test_planted_backend_disagrees_on_trigger(self):
        oracle = DifferentialOracle(
            ["native", "planted:"], timeout=TIMEOUT
        )
        outcome = oracle.check("q", "", "q")
        assert outcome.disagreement is not None
        assert outcome.disagreement.members == ("native", "planted")
        assert outcome.verdicts["native"] == MATCH
        assert outcome.verdicts["planted"] == NOMATCH
        # No trigger character: the planted backend behaves honestly.
        clean = oracle.check("a", "", "a")
        assert clean.disagreement is None

    def test_unknown_is_tolerated(self):
        oracle = DifferentialOracle(
            ["native", _FixedBackend(UNKNOWN, "mute")], timeout=TIMEOUT
        )
        outcome = oracle.check("a", "", "a")
        assert outcome.disagreement is None
        assert outcome.verdicts["mute"] == UNDECIDED
        assert oracle.counters["disagreements"] == 0

    def test_matcher_match_vs_backend_unsat_always_flags(self):
        """The completeness direction holds in *every* fragment —
        even lookaround patterns, where the formula over-approximates."""
        oracle = DifferentialOracle(
            [_FixedBackend(UNSAT, "refuter")], timeout=TIMEOUT
        )
        outcome = oracle.check("a(?=b)", "", "ab")  # really matches
        assert outcome.disagreement is not None
        assert outcome.disagreement.members == ("matcher", "refuter")

    def test_overapprox_sat_tolerated_outside_exact_fragment(self):
        """matcher=nomatch + backend=SAT on a lookaround pattern is the
        documented over-approximation, not a disagreement."""
        oracle = DifferentialOracle(
            [_FixedBackend(SAT, "eager")], timeout=TIMEOUT
        )
        outcome = oracle.check("a(?=b)", "", "ax")  # no real match
        assert outcome.disagreement is None
        assert oracle.counters["tolerated_overapprox"] == 1
        # ... but in the exact fragment (no lookarounds) it flags.
        outcome = oracle.check("ab", "", "ax")
        assert outcome.disagreement is not None
        assert outcome.disagreement.members == ("eager", "matcher")

    def test_stats_tally_disagreements(self):
        stats = SolverStats()
        oracle = DifferentialOracle(
            ["native", "planted:"], timeout=TIMEOUT, stats=stats
        )
        oracle.check("q", "", "q")
        assert stats.disagreement_summary() == {"native|planted": 1}


# -- shrinker -----------------------------------------------------------------


class TestShrinker:
    def test_shrinks_to_minimal_reproducer(self):
        oracle = DifferentialOracle(
            ["native", "planted:"], timeout=TIMEOUT
        )
        pattern, flags, word, steps = shrink_disagreement(
            oracle.disagrees, "(a|q)+", "i", "aqa"
        )
        assert steps > 0
        # The planted bug keys on 'q' in the word alone, so the minimal
        # witness is the empty pattern on the bare trigger character.
        assert (pattern, flags, word) == ("", "", "q")
        assert oracle.disagrees(pattern, flags, word)

    def test_every_accepted_step_still_disagrees(self):
        oracle = DifferentialOracle(
            ["native", "planted:"], timeout=TIMEOUT
        )
        pattern, flags, word, _ = shrink_disagreement(
            oracle.disagrees, "(?<g>q+)x?", "", "qq"
        )
        assert oracle.disagrees(pattern, flags, word)
        assert len(word) <= 2 and "q" in word

    def test_refuses_to_shrink_healthy_triples(self):
        oracle = DifferentialOracle(["native"], timeout=TIMEOUT)
        with pytest.raises(NotADisagreement):
            shrink_disagreement(oracle.disagrees, "a", "", "a")


# -- artifact store -----------------------------------------------------------


def _artifact(pattern="", flags="", word="q", **kwargs):
    return DisagreementArtifact(
        fingerprint=artifact_fingerprint(pattern, flags, word),
        pattern=pattern,
        flags=flags,
        word=word,
        **kwargs,
    )


class TestArtifactStore:
    def test_fingerprint_normalizes_flag_order(self):
        assert artifact_fingerprint("a", "gy", "x") == artifact_fingerprint(
            "a", "yg", "x"
        )
        assert artifact_fingerprint("a", "g", "x") != artifact_fingerprint(
            "a", "y", "x"
        )

    def test_record_dedupes_by_fingerprint(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "art"))
        assert store.record(_artifact()) == "new"
        assert store.record(_artifact()) == "dup"
        assert store.record(_artifact()) == "dup"
        assert len(store) == 1
        loaded = store.get(artifact_fingerprint("", "", "q"))
        assert loaded.hits == 3
        assert store.counters()["dup_hits"] == 2

    def test_corrupt_entries_are_evicted(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "art"))
        store.record(_artifact())
        entry = os.path.join(
            store.path, artifact_fingerprint("", "", "q") + ".json"
        )
        with open(entry, "w") as handle:
            handle.write('{"truncat')
        assert store.get(artifact_fingerprint("", "", "q")) is None
        assert not os.path.exists(entry)
        assert store.counters()["corrupt_evictions"] == 1
        # The next record rebuilds the entry from scratch.
        assert store.record(_artifact()) == "new"

    def test_gc_caps_the_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "art"), max_entries=4)
        for i in range(8):
            store.record(_artifact(word=f"w{i}"))
        assert len(store) <= 4
        assert store.counters()["evictions"] > 0

    def test_flood_of_one_bug_leaves_one_file(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "art"), max_entries=4)
        for _ in range(50):
            store.record(_artifact())
        assert len(store) == 1
        assert store.counters()["dup_hits"] == 49


# -- triage pipeline ----------------------------------------------------------


class TestTriagePipeline:
    def test_capture_shrink_dedupe_persist(self, tmp_path):
        oracle = DifferentialOracle(
            ["native", "planted:"], timeout=TIMEOUT
        )
        store = ArtifactStore(str(tmp_path / "art"))
        triage = TriagePipeline(oracle, store)
        first = oracle.check("(a|q)+", "", "aq").disagreement
        second = oracle.check("qb?", "", "q").disagreement
        r1 = triage.handle(first)
        r2 = triage.handle(second)
        assert r1.status == "new"
        # Both shrink to the same minimal witness → one deduped entry.
        assert r2.status == "dup"
        assert r1.artifact.fingerprint == r2.artifact.fingerprint
        assert len(store) == 1
        assert r1.artifact.origin_pattern == "(a|q)+"
        assert r1.artifact.shrink_steps > 0

    def test_unstored_without_a_store(self):
        oracle = DifferentialOracle(
            ["native", "planted:"], timeout=TIMEOUT
        )
        triage = TriagePipeline(oracle, None, shrink=False)
        result = triage.handle(oracle.check("q", "", "q").disagreement)
        assert result.status == "unstored"
        assert result.artifact.shrink_steps == 0


# -- portfolio collect mode ---------------------------------------------------


class TestPortfolioDisagreement:
    def _portfolio(self, mode, sink=None):
        from repro.solver.backends.portfolio import PortfolioBackend

        stats = SolverStats()
        backend = PortfolioBackend(
            [_FixedBackend(SAT, "yes"), _FixedBackend(UNSAT, "no")],
            stats=stats,
            on_disagreement=mode,
            disagreement_sink=sink,
        )
        return backend, stats

    def _formula(self):
        from repro.constraints import Eq, StrConst, StrVar

        return Eq(StrVar("x"), StrConst("v"))

    def test_raise_mode_is_structured(self):
        backend, _ = self._portfolio("raise")
        with pytest.raises(BackendDisagreement) as exc:
            backend.solve(self._formula())
        detail = exc.value
        assert set(detail.members) == {"yes", "no"}
        assert set(detail.statuses) == {"sat", "unsat"}
        assert detail.fingerprint
        payload = detail.payload()
        assert payload["members"] and payload["fingerprint"]

    def test_collect_mode_resolves_and_tallies(self):
        seen = []
        backend, stats = self._portfolio(
            "collect", sink=lambda formula, detail: seen.append(detail)
        )
        result = backend.solve(self._formula())
        # Neither member is native-backed: first definitive answer wins.
        assert result.status in (SAT, UNSAT)
        assert sum(stats.disagreement_summary().values()) == 1
        assert len(seen) == 1
        assert seen[0].fingerprint

    def test_collect_mode_prefers_native_backed_member(self):
        from repro.solver.backends.native import NativeBackend
        from repro.solver.backends.portfolio import PortfolioBackend

        backend = PortfolioBackend(
            [_FixedBackend(UNSAT, "liar"), NativeBackend(timeout=TIMEOUT)],
            on_disagreement="collect",
        )
        from repro.constraints import Eq, StrConst, StrVar

        # x = "v" is trivially SAT; the liar says UNSAT.  Collect mode
        # must side with the native member's sound answer.
        result = backend.solve(Eq(StrVar("x"), StrConst("v")))
        assert result.status == SAT

    def test_broken_sink_never_crashes_the_race(self):
        def bad_sink(formula, detail):
            raise RuntimeError("recorder down")

        backend, stats = self._portfolio("collect", sink=bad_sink)
        result = backend.solve(self._formula())
        assert result.status in (SAT, UNSAT)
        assert sum(stats.disagreement_summary().values()) == 1


# -- the fuzz job -------------------------------------------------------------


class TestFuzzJob:
    def _planted_job(self, tmp_path, **kwargs):
        from repro.service.jobs import FuzzJob

        defaults = dict(
            job_id="fuzz-t",
            budget=6,
            seed=7,
            oracle_backends=["native", "planted:"],
            solver_timeout=TIMEOUT,
            artifact_dir=str(tmp_path / "art"),
        )
        defaults.update(kwargs)
        return FuzzJob(**defaults)

    def test_planted_campaign_yields_one_deduped_artifact(
        self, tmp_path
    ):
        result = self._planted_job(tmp_path).run()
        assert result.status == "ok"
        p = result.payload
        assert p["disagreements"] > 0
        assert p["artifacts_new"] == 1
        assert p["artifacts_dup"] >= 1
        assert len(p["unique_fingerprints"]) == 1
        assert p["disagreement_tallies"] == {
            "native|planted": p["disagreements"]
        }
        assert p["artifact_store"]["entries"] == 1
        store = ArtifactStore(str(tmp_path / "art"))
        (artifact,) = store.load_all()
        assert (artifact.pattern, artifact.flags, artifact.word) == (
            "",
            "",
            "q",
        )
        assert artifact.hits == p["artifacts_dup"] + 1

    def test_honest_campaign_stays_clean(self):
        from repro.service.jobs import FuzzJob

        result = FuzzJob(
            job_id="fuzz-h", budget=6, seed=1909, solver_timeout=TIMEOUT
        ).run()
        assert result.status == "ok"
        assert result.payload["disagreements"] == 0
        assert result.payload["artifacts_new"] == 0
        assert result.payload["disagreement_tallies"] == {}
        assert result.payload["checks"] > 0

    def test_raise_mode_fails_the_job(self, tmp_path):
        result = self._planted_job(
            tmp_path, budget=4, on_disagreement="raise", shrink=False
        ).run()
        assert result.status == "error"
        assert "BackendDisagreement" in result.error

    def test_spec_round_trip_and_dedup_key(self, tmp_path):
        from repro.service.jobs import job_from_spec

        job = self._planted_job(tmp_path)
        clone = job_from_spec(
            json.loads(json.dumps(job.to_spec()))
        )
        assert clone.to_spec() == job.to_spec()
        assert clone.dedup_key() == job.dedup_key()
        other = self._planted_job(tmp_path, seed=8)
        assert other.dedup_key() != job.dedup_key()

    def test_workload_shards_cover_the_exact_budget(self):
        from repro.service.jobs import fuzz_workload

        jobs = fuzz_workload(budget=20, seed=5, shards=3)
        assert sum(j.budget for j in jobs) == 20
        whole = generate_pairs(20, seed=5)
        sharded = []
        for job in jobs:
            sharded.extend(
                generate_pairs(job.budget, seed=job.seed, offset=job.offset)
            )
        assert sharded == whole

    def test_soundness_table_in_batch_report(self, tmp_path):
        from repro.service import BatchReport, format_batch_report

        result = self._planted_job(tmp_path).run()
        report = format_batch_report(BatchReport(results=[result]))
        assert "== Soundness (conformance)" in report
        assert "native|planted" in report

    def test_clean_report_says_so(self):
        from repro.service import BatchReport, format_batch_report
        from repro.service.jobs import FuzzJob

        result = FuzzJob(
            job_id="fuzz-c", budget=3, seed=1909, solver_timeout=TIMEOUT
        ).run()
        report = format_batch_report(BatchReport(results=[result]))
        assert "no backend disagreements recorded" in report


# -- through the serve daemon -------------------------------------------------


class TestFuzzThroughServe:
    def test_fuzz_job_over_the_socket(self, tmp_path):
        from serve_testing import start_daemon, stop_started

        from repro.serve.client import ServeClient

        server, sock = start_daemon(tmp_path)
        try:
            client = ServeClient(socket_path=sock, timeout=60.0)
            try:
                ack = client.submit(
                    {
                        "kind": "fuzz",
                        "job_id": "fuzz-serve",
                        "budget": 3,
                        "seed": 7,
                        "oracle_backends": ["native", "planted:"],
                        "solver_timeout": TIMEOUT,
                        "artifact_dir": str(tmp_path / "art"),
                    }
                )
                result = client.wait_result(ack["id"])
            finally:
                client.close()
            assert result.status == "ok"
            assert result.payload["checks"] > 0
            assert result.payload["artifacts_new"] in (0, 1)
        finally:
            stop_started()
