"""Robustness satellites riding along with the cluster PR.

Four independent hardening surfaces, each with the failure mode it
guards against:

- the circuit breaker's half-open gate must admit **exactly one**
  probe under concurrency — two racing probes would double-tap a
  recovering solver binary;
- retry backoff jitter must be deterministic *across processes* (it
  is a blake2b hash, not ``random``), or the chaos suite's
  byte-identical-report property dies;
- ``ServeClient.reconnect()`` must resubmit in-flight specs so a
  daemon hiccup mid-batch is invisible to ``iter_results`` waiters;
- ``submit --wait-on-overload`` must honor the daemon's
  ``retry_after`` hint instead of dropping jobs on the first
  overload rejection;
- disk-store corruption evictions must be visible in
  ``obs.snapshot()`` and the serve ``health`` op — the operator's
  early warning for a bad disk.
"""

import hashlib
import json
import socket
import subprocess
import sys
import threading
import time
from types import SimpleNamespace

import pytest

from repro import obs
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.retry import RetryPolicy
from repro.serve.client import ServeClient
from repro.service import jobs

from serve_testing import (
    GateJob,
    open_gate,
    reset_gates,
    start_daemon,
    stop_started,
    wait_until,
)


@pytest.fixture(autouse=True)
def _serve_teardown():
    reset_gates()
    yield
    reset_gates()
    stop_started()


@pytest.fixture
def gate_kind(monkeypatch):
    monkeypatch.setitem(jobs._JOB_KINDS, "gate", GateJob)


class TestBreakerHalfOpenRace:
    def test_exactly_one_probe_admitted_under_concurrency(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "session:test",
            fail_threshold=1,
            cooldown_s=5.0,
            clock=lambda: clock[0],
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 6.0  # cooldown elapsed: next allow() opens the gate
        barrier = threading.Barrier(8)
        admitted = []
        lock = threading.Lock()

        def contender():
            barrier.wait()
            ok = breaker.allow()
            with lock:
                admitted.append(ok)

        threads = [
            threading.Thread(target=contender) for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sum(admitted) == 1  # one probe, seven short-circuits
        assert breaker.state == HALF_OPEN
        assert breaker.short_circuits == 7
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_stale_probe_frees_the_slot(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "session:test",
            fail_threshold=1,
            cooldown_s=5.0,
            clock=lambda: clock[0],
        )
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow() is True  # the probe
        assert breaker.allow() is False  # slot taken
        clock[0] = 12.0  # probe's caller never reported back
        assert breaker.allow() is True  # stale probe reclaimed


class TestJitterDeterminism:
    def test_delay_matches_the_blake2b_contract(self):
        policy = RetryPolicy(max_retries=3, backoff_s=1.0, jitter=0.25)
        digest = hashlib.blake2b(b"job-42:1", digest_size=8).digest()
        expected = 1.0 * (
            1.0 + 0.25 * int.from_bytes(digest, "big") / 2**64
        )
        assert policy.delay(1, "job-42") == expected
        # Pinned literal: a silent change to the hash input layout or
        # digest size shows up as a golden-value mismatch, not as
        # "some other deterministic schedule".
        assert policy.delay(1, "job-42") == pytest.approx(
            1.206308972308118, abs=1e-15
        )
        assert policy.delay(2, "job-42") == pytest.approx(
            2.0251085139971945, abs=1e-15
        )

    def test_delay_is_identical_across_processes(self):
        policy = RetryPolicy(max_retries=3, backoff_s=1.0, jitter=0.25)
        here = [policy.delay(a, "job-42") for a in (1, 2, 3)]
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.faults.retry import RetryPolicy\n"
                "p = RetryPolicy(max_retries=3, backoff_s=1.0, "
                "jitter=0.25)\n"
                "print(repr([p.delay(a, 'job-42') for a in (1, 2, 3)]))",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        assert eval(out.stdout.strip()) == here  # bit-for-bit equal


class TestClientResubmission:
    def test_reconnect_resubmits_inflight_specs(self, tmp_path, gate_kind):
        server, sock = start_daemon(tmp_path)
        client = ServeClient(
            socket_path=sock,
            timeout=15.0,
            reconnect=True,
            reconnect_backoff_s=0.05,
        )
        try:
            a1 = client.submit(
                {"kind": "gate", "gate": "r1", "payload_note": "one"}
            )
            a2 = client.submit(
                {"kind": "gate", "gate": "r2", "payload_note": "two"}
            )
            # Kill the connection out from under the client (the daemon
            # is fine — this is the client's link dying mid-batch).
            client._sock.shutdown(socket.SHUT_RDWR)
            open_gate("r1")
            open_gate("r2")
            got = {}
            for request_id, result, _ in client.iter_results():
                got[request_id] = result
        finally:
            client.close()
        # Resubmission kept the original request ids, so the waiters'
        # bookkeeping never noticed the blink.
        assert set(got) == {a1["id"], a2["id"]}
        assert got[a1["id"]].status == "ok"
        assert got[a1["id"]].payload["note"] == "one"
        assert got[a2["id"]].payload["note"] == "two"

    def test_wait_result_survives_a_dead_connection(
        self, tmp_path, gate_kind
    ):
        server, sock = start_daemon(tmp_path)
        client = ServeClient(
            socket_path=sock,
            timeout=15.0,
            reconnect=True,
            reconnect_backoff_s=0.05,
        )
        try:
            ack = client.submit({"kind": "gate", "gate": "w1"})
            client._sock.shutdown(socket.SHUT_RDWR)
            open_gate("w1")
            result = client.wait_result(ack["id"])
        finally:
            client.close()
        assert result.status == "ok"


def _submit_args(sock, files, wait_on_overload=0.0, json_out=None):
    return SimpleNamespace(
        socket=sock,
        host=None,
        port=None,
        timeout=30.0,
        stats=False,
        health=False,
        files=files,
        level="full",
        max_tests=10,
        time_budget=5.0,
        backend=None,
        stream=False,
        json=json_out,
        wait_on_overload=wait_on_overload,
    )


class TestWaitOnOverload:
    def _fill_daemon(self, sock):
        """One job in flight + one queued == a full max_queue=1 daemon."""
        occupier = ServeClient(socket_path=sock, timeout=30.0)
        occupier.submit({"kind": "gate", "gate": "occ-run"})
        occupier.submit({"kind": "gate", "gate": "occ-queued"})
        return occupier

    def test_zero_budget_drops_on_first_rejection(
        self, tmp_path, gate_kind
    ):
        from repro.serve.cli import run_submit

        server, sock = start_daemon(
            tmp_path, max_queue=1, max_inflight=1
        )
        occupier = self._fill_daemon(sock)
        try:
            wait_until(lambda: server.scheduler.stats()["queue_depth"] == 1)
            job_file = str(tmp_path / "job.json")
            with open(job_file, "w") as handle:
                json.dump(
                    {"kind": "solve", "job_id": "w", "pattern": "ab"},
                    handle,
                )
            rc = run_submit(_submit_args(sock, [job_file]))
            assert rc == 3  # rejected, no waiting
        finally:
            open_gate("occ-run")
            open_gate("occ-queued")
            list(occupier.iter_results())
            occupier.close()

    def test_budget_waits_out_the_overload(self, tmp_path, gate_kind):
        from repro.serve.cli import run_submit

        server, sock = start_daemon(
            tmp_path, max_queue=1, max_inflight=1
        )
        occupier = self._fill_daemon(sock)
        try:
            wait_until(lambda: server.scheduler.stats()["queue_depth"] == 1)
            job_file = str(tmp_path / "job.json")
            with open(job_file, "w") as handle:
                json.dump(
                    {"kind": "solve", "job_id": "w", "pattern": "ab"},
                    handle,
                )
            opener = threading.Timer(0.3, lambda: (
                open_gate("occ-run"), open_gate("occ-queued")
            ))
            opener.start()
            try:
                rc = run_submit(
                    _submit_args(sock, [job_file], wait_on_overload=15.0)
                )
            finally:
                opener.join()
            assert rc == 0  # waited out retry_after, then landed
            assert server.scheduler.stats()["rejected"] >= 1
        finally:
            open_gate("occ-run")
            open_gate("occ-queued")
            list(occupier.iter_results())
            occupier.close()


class TestCorruptionCounters:
    def test_query_store_corruption_counts_in_obs_snapshot(
        self, tmp_path
    ):
        from repro.solver.backends.cached import (
            CachedResult,
            QueryDiskStore,
        )

        store = QueryDiskStore(str(tmp_path / "q"))
        store.put("fp", CachedResult("unsat"))
        with open(store._entry("fp"), "wb") as handle:
            handle.write(b"\x80garbage")
        assert store.get("fp") is None  # evicted as a miss
        assert store.corrupt_evictions == 1
        snap = obs.snapshot()["stores"]
        assert snap["query"]["corrupt_evictions"] >= 1
        assert snap["query"]["open_stores"] >= 1
        assert "corrupt_evictions" in snap["dfa"]

    def test_health_op_surfaces_store_counters(self, tmp_path):
        server, sock = start_daemon(tmp_path)
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            health = client.health()
        assert "stores" in health
        for section in ("query", "dfa"):
            assert "corrupt_evictions" in health["stores"][section]
            assert "failures" in health["stores"][section]
