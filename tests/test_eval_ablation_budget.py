"""Tests for the solver-budget ablation harness + the scheduling fix it
motivated (iterative deepening as the outer loop)."""

import time

from repro.constraints import StrVar
from repro.eval.ablation import (
    BUDGET_BANK,
    format_budget_ablation,
    run_budget_ablation,
)
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.solver import SAT, Solver


class TestBudgetAblation:
    def test_all_configs_solve_everything(self):
        points = run_budget_ablation()
        for point in points:
            assert point.solved == point.total, (
                f"{point.label}: {point.solved}/{point.total}"
            )

    def test_formatting(self):
        points = run_budget_ablation(configs=[("tiny", (2,), 50)])
        text = format_budget_ablation(points)
        assert "tiny" in text and "8/8" in text


class TestDeepeningIsOuterLoop:
    def test_hard_core_does_not_starve_good_core(self):
        """A formula whose first core is expensive-and-unsat must still
        solve quickly through its second core at the cheapest limit."""
        from repro.constraints import Eq, InRe, Not, Or, StrConst, conj
        from repro.regex import parse_regex

        x = StrVar("x")
        # Core 1: x ∈ Σ* ∧ x ∉ .{0,30}  — needs a 31-char word (slow).
        # Core 2: x = "hit"             — instant.
        hard = conj(
            [
                InRe(x, parse_regex("[ab]*").body),
                Not(InRe(x, parse_regex(".{0,30}").body)),
                Eq(x, StrConst("a" * 31)),
            ]
        )
        easy = Eq(x, StrConst("hit"))
        formula = Or((hard, easy))
        start = time.perf_counter()
        result = Solver(timeout=10.0).solve(formula)
        elapsed = time.perf_counter() - start
        assert result.status == SAT
        assert elapsed < 5.0

    def test_mixed_bank_under_a_second_each(self):
        for source, flags in BUDGET_BANK:
            regexp = SymbolicRegExp(source, flags)
            model = regexp.exec_model(StrVar("inp"))
            start = time.perf_counter()
            result = CegarSolver(solver=Solver(timeout=5.0)).solve(
                model.match_formula, [model.constraint]
            )
            elapsed = time.perf_counter() - start
            assert result.status == SAT, f"/{source}/{flags}"
            assert elapsed < 3.0, f"/{source}/{flags} took {elapsed:.2f}s"
