"""End-to-end integration tests across all subsystems.

Each test exercises a realistic pipeline: program text → DSE → path
condition → capturing-language model → solver → CEGAR → new inputs →
coverage/bugs, or survey text → extraction → classification → tables.
"""

import pytest

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.corpus import extract_regex_literals, classify
from repro.dse import RegexSupportLevel, analyze, build_harness
from repro.model import CegarSolver, SymbolicRegExp
from repro.regex import RegExp
from repro.solver import SAT


class TestPaperWalkthrough:
    """§3.2's exact narrative, step by step."""

    REGEX = r"<(\w+)>([0-9]*)<\/\1>"

    def test_step1_negated_membership_gives_matching_input(self):
        # pc = (args[0], ...) ∉ Lc(R); negating yields a member.
        regexp = SymbolicRegExp(self.REGEX)
        arg = StrVar("arg")
        model = regexp.exec_model(arg)
        result = CegarSolver().solve(model.match_formula, [model.constraint])
        assert result.status == SAT
        word = result.model.eval_term(arg)
        assert RegExp(self.REGEX).test(word)

    def test_step2_pin_capture_to_timeout(self):
        regexp = SymbolicRegExp(self.REGEX)
        arg = StrVar("arg")
        model = regexp.exec_model(arg)
        problem = conj(
            [model.match_formula, Eq(model.captures[1], StrConst("timeout"))]
        )
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT
        concrete = RegExp(self.REGEX).exec(result.model.eval_term(arg))
        assert concrete[1] == "timeout"

    def test_step3_empty_number_triggers_bug(self):
        # C2 ∉ Lc(^[0-9]+$): the empty string is the witness.
        regexp = SymbolicRegExp(self.REGEX)
        checker = SymbolicRegExp(r"^[0-9]+$")
        arg = StrVar("arg")
        model = regexp.exec_model(arg)
        check_model = checker.exec_model(model.captures[2])
        problem = conj(
            [
                model.match_formula,
                Eq(model.captures[1], StrConst("timeout")),
                check_model.no_match_formula,
            ]
        )
        result = CegarSolver().solve(
            problem,
            [model.constraint, check_model.negative_constraint],
        )
        assert result.status == SAT
        word = result.model.eval_term(arg)
        concrete = RegExp(self.REGEX).exec(word)
        assert concrete is not None
        assert concrete[1] == "timeout"
        assert not RegExp(r"^[0-9]+$").test(concrete[2])


class TestFullPipelinePrograms:
    def test_version_router(self):
        source = r"""
        var v = symbol("v", "");
        var m = /^(\d+)\.(\d+)$/.exec(v);
        var route = "none";
        if (m) {
            if (m[1] === "2") {
                route = "v2";
            } else {
                route = "v1";
            }
        }
        assert(route !== "v2", "v2 reached");
        """
        result = analyze(source, max_tests=20, time_budget=30)
        assert result.failures
        assert result.coverage == 1.0

    def test_backreference_guard(self):
        source = r"""
        var s = symbol("s", "");
        if (/^(\w+)-\1$/.test(s)) {
            assert(false, "doubled word");
        }
        """
        result = analyze(source, max_tests=15, time_budget=30)
        assert result.failures

    def test_case_insensitive_flag(self):
        source = r"""
        var s = symbol("s", "");
        if (/^quit$/i.test(s)) { assert(false, "quit"); }
        """
        result = analyze(source, max_tests=10, time_budget=30)
        assert result.failures

    def test_multiline_program_with_string_ops(self):
        source = r"""
        var s = symbol("s", "");
        var full = s + "-suffix";
        if (/^\d+-suffix$/.test(full)) { assert(false, "numeric prefix"); }
        """
        result = analyze(source, max_tests=15, time_budget=30)
        assert result.failures

    def test_harnessed_library_end_to_end(self):
        library = r"""
        function route(path) {
            var m = /^\/api\/(\w+)$/.exec(path);
            if (!m) { return 404; }
            if (m[1] === "users") { return 200; }
            return 403;
        }
        module.exports = {route: route};
        """
        harnessed = build_harness(library)
        result = analyze(harnessed, max_tests=25, time_budget=30)
        assert result.coverage == 1.0


class TestSurveyToModelBridge:
    """Regexes found by the extractor must be consumable by the model."""

    def test_extracted_literal_is_solvable(self):
        source = 'var re = /^(\\w+)@(\\w+)$/; re.test("x");'
        literals = extract_regex_literals(source)
        assert len(literals) == 1
        features = classify(literals[0].source, literals[0].flags)
        assert features.capture_groups
        from repro.model import find_matching_input

        result = find_matching_input(literals[0].source)
        assert result is not None
        assert RegExp(literals[0].source).test(result[0])
