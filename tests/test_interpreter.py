"""Unit tests for the concolic mini-JS interpreter."""

import pytest

from repro.dse.interpreter import Interpreter, RegexSupportLevel
from repro.dse.parser import parse_program
from repro.dse.values import JSArray, JSObject, UNDEFINED, concrete_of


def run(source, inputs=None, level=RegexSupportLevel.REFINED):
    interp = Interpreter(parse_program(source), inputs or {}, level=level)
    trace = interp.run()
    return interp, trace


def result_of(source, inputs=None):
    interp, trace = run(
        f"var __result; {source}", inputs
    )
    return concrete_of(interp.globals.lookup("__result"))


class TestConcreteSemantics:
    def test_arithmetic(self):
        assert result_of("__result = 2 + 3 * 4;") == 14

    def test_string_concat(self):
        assert result_of("__result = 'a' + 'b' + 1;") == "ab1"

    def test_comparisons(self):
        assert result_of("__result = 3 > 2;") is True
        assert result_of("__result = 'a' === 'b';") is False

    def test_truthiness(self):
        assert result_of("__result = '' ? 1 : 2;") == 2
        assert result_of("__result = 'x' ? 1 : 2;") == 1
        assert result_of("__result = undefined ? 1 : 2;") == 2

    def test_logical_operators_return_values(self):
        assert result_of("__result = 'a' && 'b';") == "b"
        assert result_of("__result = '' || 'fallback';") == "fallback"

    def test_functions_and_closures(self):
        source = """
        function adder(n) {
            return function (x) { return x + n; };
        }
        __result = adder(10)(5);
        """
        assert result_of(source) == 15

    def test_recursion(self):
        source = """
        function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        __result = fact(5);
        """
        assert result_of(source) == 120

    def test_loops(self):
        source = """
        var total = 0;
        for (var i = 0; i < 5; i = i + 1) { total += i; }
        __result = total;
        """
        assert result_of(source) == 10

    def test_while_break_continue(self):
        source = """
        var n = 0; var i = 0;
        while (true) {
            i = i + 1;
            if (i > 10) { break; }
            if (i % 2 === 0) { continue; }
            n = n + 1;
        }
        __result = n;
        """
        assert result_of(source) == 5

    def test_arrays(self):
        source = """
        var a = [1, 2]; a.push(3);
        __result = a.length + a[0];
        """
        assert result_of(source) == 4

    def test_objects(self):
        assert result_of("var o = {k: 'v'}; __result = o.k;") == "v"

    def test_string_methods(self):
        assert result_of("__result = 'Hello'.toLowerCase();") == "hello"
        assert result_of("__result = 'a,b,c'.split(',').length;") == 3
        assert result_of("__result = ' x '.trim();") == "x"

    def test_typeof(self):
        assert result_of("__result = typeof 'a';") == "string"
        assert result_of("__result = typeof 1;") == "number"
        assert result_of("__result = typeof undefined;") == "undefined"

    def test_throw_and_error(self):
        _, trace = run("throw 'boom';")
        assert "boom" in trace.error

    def test_module_exports(self):
        interp, trace = run(
            "module.exports = {f: function (x) { return x; }};"
        )
        assert isinstance(trace.exports, JSObject)


class TestRegexSemantics:
    def test_concrete_regex_test(self):
        assert result_of("__result = /ab+/.test('xabbz');") is True
        assert result_of("__result = /ab+/.test('xyz');") is False

    def test_concrete_exec_captures(self):
        source = """
        var m = /(a+)(b+)/.exec('xaabbz');
        __result = m[1] + '-' + m[2];
        """
        assert result_of(source) == "aa-bb"

    def test_exec_no_match_is_undefined(self):
        assert result_of("__result = /x/.exec('a') === undefined;") is True

    def test_sticky_regex_state(self):
        source = """
        var r = /goo+d/y;
        var a = r.test('goood');
        var b = r.test('goood');
        __result = (a === true) && (b === false);
        """
        assert result_of(source) is True

    def test_string_match(self):
        assert result_of("__result = 'a1b2'.match(/\\d/)[0];") == "1"

    def test_string_replace_with_regex(self):
        assert result_of(
            "__result = 'good morning'.replace(/goo+d/, 'better');"
        ) == "better morning"

    def test_string_search(self):
        assert result_of("__result = 'xyz123'.search(/\\d+/);") == 3


class TestSymbolicTracking:
    def test_symbolic_input_branches(self):
        _, trace = run(
            """
            var s = symbol("s", "nope");
            if (s === "secret") { 1; } else { 2; }
            """
        )
        assert len(trace.branches) == 1
        assert trace.branches[0].flipped is not None

    def test_symbolic_concat_stays_symbolic(self):
        interp, trace = run(
            """
            var s = symbol("s", "x");
            var t = "pre" + s;
            if (t === "preY") { 1; }
            """
        )
        assert len(trace.branches) == 1

    def test_regex_on_symbolic_records_fork(self):
        _, trace = run(
            """
            var s = symbol("s", "hello");
            if (/h(e+)llo/.test(s)) { 1; } else { 2; }
            """
        )
        regex_branches = [b for b in trace.branches if b.taken_constraints
                          or b.flipped_constraints]
        assert len(regex_branches) == 1

    def test_concrete_level_does_not_fork_regex(self):
        _, trace = run(
            """
            var s = symbol("s", "hello");
            if (/h/.test(s)) { 1; } else { 2; }
            """,
            level=RegexSupportLevel.CONCRETE,
        )
        assert not any(
            b.taken_constraints or b.flipped_constraints
            for b in trace.branches
        )
        assert trace.concretizations >= 1

    def test_exec_captures_symbolic_at_full_level(self):
        interp, trace = run(
            """
            var s = symbol("s", "<t>1</t>");
            var parts = /<(\\w+)>([0-9]*)<\\/\\1>/.exec(s);
            if (parts) { if (parts[1] === "x") { 1; } }
            """
        )
        # Two symbolic branches: the regex fork and the capture compare.
        assert len(trace.branches) == 2

    def test_exec_captures_concrete_at_model_level(self):
        _, trace = run(
            """
            var s = symbol("s", "<t>1</t>");
            var parts = /<(\\w+)>([0-9]*)<\\/\\1>/.exec(s);
            if (parts) { if (parts[1] === "x") { 1; } }
            """,
            level=RegexSupportLevel.MODEL,
        )
        # Only the regex fork is symbolic; capture comparison is concrete.
        assert len(trace.branches) == 1

    def test_assert_failure_recorded(self):
        _, trace = run("assert(1 === 2, 'broken');")
        assert trace.failures == ["broken"]

    def test_coverage_recorded(self):
        program = parse_program("var a = 1; if (a) { a = 2; } else { a = 3; }")
        trace = Interpreter(program, {}).run()
        assert len(trace.covered) >= 3
        assert len(trace.covered) < program.statement_count  # else untaken
