"""Unit tests for Algorithm 1 (the CEGAR refinement loop)."""

import pytest

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CapturingConstraint, CegarResult, CegarSolver
from repro.regex import RegExp
from repro.solver import SAT, Solver, SolverStats, UNKNOWN, UNSAT


def exec_model_for(source, flags=""):
    regexp = SymbolicRegExp(source, flags)
    inp = StrVar("w")
    return inp, regexp.exec_model(inp)


class TestValidationLoop:
    def test_no_refinement_needed_when_model_is_correct(self):
        inp, model = exec_model_for(r"^(a+)(b+)$")
        result = CegarSolver().solve(model.match_formula, [model.constraint])
        assert result.status == SAT
        assert result.refinements == 0 or result.refinements <= 2

    def test_precedence_trap_requires_refinement(self):
        inp, model = exec_model_for(r"^a*(a)?$")
        problem = conj([model.match_formula, Eq(inp, StrConst("aa"))])
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT
        assert result.refinements >= 1
        assert result.model[model.captures[1]] is None

    def test_unsat_propagates(self):
        inp, model = exec_model_for(r"^a$")
        problem = conj([model.match_formula, Eq(inp, StrConst("b"))])
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == UNSAT
        assert result.model is None

    def test_refinement_limit_yields_unknown(self):
        # With limit 0, any needed refinement must surface as unknown.
        inp, model = exec_model_for(r"^a*(a)?$")
        problem = conj(
            [
                model.match_formula,
                Eq(inp, StrConst("aa")),
                Eq(model.captures[1], StrConst("a")),  # spurious pin
            ]
        )
        result = CegarSolver(refinement_limit=0).solve(
            problem, [model.constraint]
        )
        assert result.status == UNKNOWN
        assert result.hit_limit

    def test_spurious_pin_eventually_unsat(self):
        inp, model = exec_model_for(r"^a*(a)?$")
        problem = conj(
            [
                model.match_formula,
                Eq(inp, StrConst("aa")),
                Eq(model.captures[1], StrConst("a")),
            ]
        )
        result = CegarSolver(refinement_limit=20).solve(
            problem, [model.constraint]
        )
        assert result.status == UNSAT

    def test_result_truthiness(self):
        assert CegarResult(SAT)
        assert not CegarResult(UNSAT)
        assert not CegarResult(UNKNOWN)


class TestNonMembershipValidation:
    def test_non_member_refinement(self):
        # The negative branch must never return a word that matches.
        inp, model = exec_model_for(r"(a)\1")
        result = CegarSolver().solve(
            model.no_match_formula, [model.negative_constraint]
        )
        assert result.status == SAT
        word = result.model.eval_term(inp)
        assert not RegExp(r"(a)\1").test(word)

    def test_anchored_non_member(self):
        inp, model = exec_model_for(r"^[0-9]+$")
        result = CegarSolver().solve(
            model.no_match_formula, [model.negative_constraint]
        )
        assert result.status == SAT
        assert not RegExp(r"^[0-9]+$").test(result.model.eval_term(inp))


class TestConcreteMatchBridge:
    def test_constraint_runs_concrete_matcher(self):
        constraint = CapturingConstraint(
            source=r"(\d+)",
            flags="",
            word=StrVar("w"),
            captures={},
        )
        match = constraint.concrete_match("abc123")
        assert match is not None and match[1] == "123"

    def test_last_index_respected(self):
        constraint = CapturingConstraint(
            source=r"\d",
            flags="g",
            word=StrVar("w"),
            captures={},
            last_index=2,
        )
        match = constraint.concrete_match("1x2x3")
        assert match is not None and match[0] == "2"


class TestStatsPlumbing:
    def test_stats_recorded_per_query(self):
        stats = SolverStats()
        inp, model = exec_model_for(r"(a+)b")
        CegarSolver(stats=stats).solve(
            model.match_formula, [model.constraint]
        )
        assert len(stats.queries) == 1
        record = stats.queries[0]
        assert record.had_regex and record.had_captures
        assert record.seconds >= 0

    def test_refinements_counted(self):
        stats = SolverStats()
        inp, model = exec_model_for(r"^a*(a)?$")
        problem = conj([model.match_formula, Eq(inp, StrConst("aa"))])
        CegarSolver(stats=stats).solve(problem, [model.constraint])
        assert stats.queries[0].refinements >= 1
        summary = stats.refinement_summary()
        assert summary["refined_queries"] == 1

    def test_summary_shape(self):
        stats = SolverStats()
        summary = stats.summary()
        assert set(summary) == {
            "all", "with_captures", "with_refinement", "hit_limit",
        }
        assert summary["all"]["count"] == 0
