"""Unit tests for interval-based character sets."""

import pytest

from repro.regex.charclass import (
    CLASS_ESCAPES,
    CharSet,
    DIGIT,
    DOT,
    LINE_TERMINATORS,
    MAX_CODEPOINT,
    NOT_WORD,
    SPACE,
    WORD,
    is_word_char,
    partition,
)


class TestConstruction:
    def test_of_chars_merges_adjacent(self):
        assert CharSet.of("abc").intervals == ((97, 99),)

    def test_of_range_accepts_str_and_int(self):
        assert CharSet.of_range("a", "c") == CharSet.of_range(97, 99)

    def test_of_intervals_normalises_overlap(self):
        cs = CharSet.of_intervals([(5, 10), (8, 20), (30, 30)])
        assert cs.intervals == ((5, 20), (30, 30))

    def test_empty_interval_dropped(self):
        assert CharSet.of_intervals([(10, 5)]).is_empty()

    def test_clamped_to_universe(self):
        cs = CharSet.of_intervals([(-5, MAX_CODEPOINT + 100)])
        assert cs == CharSet.any()


class TestMembership:
    def test_contains_char_and_codepoint(self):
        cs = CharSet.of("xyz")
        assert "x" in cs and ord("y") in cs
        assert "w" not in cs

    def test_empty_contains_nothing(self):
        assert "a" not in CharSet.empty()

    def test_size(self):
        assert CharSet.of_range("0", "9").size() == 10
        assert CharSet.any().size() == MAX_CODEPOINT + 1

    def test_min_codepoint(self):
        assert CharSet.of("zxa").min_codepoint() == ord("a")
        with pytest.raises(ValueError):
            CharSet.empty().min_codepoint()


class TestAlgebra:
    def test_union(self):
        assert CharSet.of("ab").union(CharSet.of("cd")) == CharSet.of("abcd")

    def test_complement_involution(self):
        cs = CharSet.of("qrs").union(DIGIT)
        assert cs.complement().complement() == cs

    def test_complement_of_any_is_empty(self):
        assert CharSet.any().complement().is_empty()

    def test_intersect(self):
        assert WORD.intersect(DIGIT) == DIGIT
        assert DIGIT.intersect(CharSet.of("abc")).is_empty()

    def test_difference(self):
        letters = WORD.difference(DIGIT).difference(CharSet.of("_"))
        assert "a" in letters and "0" not in letters and "_" not in letters

    def test_overlaps(self):
        assert WORD.overlaps(DIGIT)
        assert not DIGIT.overlaps(CharSet.of("xyz"))

    def test_de_morgan(self):
        a, b = WORD, SPACE
        lhs = a.union(b).complement()
        rhs = a.complement().intersect(b.complement())
        assert lhs == rhs


class TestPredefined:
    def test_dot_excludes_line_terminators(self):
        assert "\n" not in DOT and "\r" not in DOT
        assert " " not in DOT and "a" in DOT
        assert DOT.complement() == LINE_TERMINATORS

    def test_word_is_ascii_word(self):
        for ch in "azAZ09_":
            assert ch in WORD
        for ch in "-é ":
            assert ch not in WORD
        assert NOT_WORD == WORD.complement()

    def test_space_contains_common_whitespace(self):
        for ch in " \t\n\r\v\f ﻿":
            assert ch in SPACE

    def test_class_escape_table_is_consistent(self):
        assert CLASS_ESCAPES["d"].complement() == CLASS_ESCAPES["D"]
        assert CLASS_ESCAPES["w"].complement() == CLASS_ESCAPES["W"]
        assert CLASS_ESCAPES["s"].complement() == CLASS_ESCAPES["S"]

    def test_is_word_char(self):
        assert is_word_char("a") and is_word_char("_")
        assert not is_word_char("-")


class TestCaseClosure:
    def test_ascii_letter(self):
        assert CharSet.of("a").case_closure() == CharSet.of("aA")

    def test_already_closed(self):
        cs = CharSet.of("aA")
        assert cs.case_closure() == cs

    def test_digits_unchanged(self):
        assert DIGIT.case_closure() == DIGIT

    def test_range_closure_covers_both_cases(self):
        closed = CharSet.of_range("a", "z").case_closure()
        assert "Q" in closed and "q" in closed


class TestPartition:
    def test_partition_is_disjoint_cover(self):
        sets = [WORD, DIGIT, CharSet.of("x-")]
        classes = partition(sets)
        total = CharSet.empty()
        for i, cls in enumerate(classes):
            total = total.union(cls)
            for other in classes[i + 1:]:
                assert not cls.overlaps(other)
        assert total == CharSet.any()

    def test_each_class_homogeneous(self):
        sets = [WORD, DIGIT, SPACE]
        for cls in partition(sets):
            lo = cls.intervals[0][0]
            for target in sets:
                assert (lo in target) == cls.intersect(target).overlaps(cls) or \
                    cls.intersect(target).is_empty() or cls.intersect(target) == cls

    def test_sampling_prefers_readable(self):
        assert CharSet.any().sample_chars(3)[0] == "a"
        assert CharSet.of_range("0", "9").sample_chars(2) == ["0", "1"]
