"""Tests for the batch service job model (specs + execution)."""

import json

import pytest

from repro.service import (
    AnalyzeJob,
    JobResult,
    SolveJob,
    SurveyJob,
    job_from_spec,
    survey_workload,
)
from repro.service.jobs import analyze_jobs_from_files

PROGRAM = (
    'var s = symbol("s", "");\n'
    'if (/^a+$/.test(s)) { 1; } else { 2; }\n'
)


class TestSpecs:
    def test_round_trip_all_kinds(self):
        jobs = [
            AnalyzeJob(job_id="a", source=PROGRAM, max_tests=5),
            SolveJob(job_id="s", pattern="a+b", flags="i"),
            SurveyJob(job_id="v", package_files=[["var x = /a/;"]]),
        ]
        for job in jobs:
            spec = json.loads(json.dumps(job.to_spec()))  # JSON-safe
            assert job_from_spec(spec) == job

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            job_from_spec({"kind": "nope", "job_id": "x"})

    def test_backend_field_survives_the_spec_round_trip(self):
        jobs = [
            AnalyzeJob(job_id="a", source=PROGRAM,
                       backend="portfolio:native+smtlib"),
            SolveJob(job_id="s", pattern="a+b", backend="cached:native"),
            SurveyJob(job_id="v", package_files=[],
                      backend="native?timeout=1"),
        ]
        for job in jobs:
            spec = json.loads(json.dumps(job.to_spec()))
            rebuilt = job_from_spec(spec)
            assert rebuilt == job
            assert rebuilt.backend == job.backend

    def test_specs_without_backend_default_to_none(self):
        # Old (pre-backend) job specs must still rebuild.
        job = job_from_spec(
            {"kind": "solve", "job_id": "s", "pattern": "a"}
        )
        assert job.backend is None

    def test_result_round_trip(self):
        result = JobResult(
            job_id="a", kind="solve", status="ok", payload={"found": True}
        )
        assert JobResult.from_spec(result.to_spec()) == result


class TestAnalyzeJob:
    def test_runs_and_reports_coverage(self):
        result = AnalyzeJob(
            job_id="a", source=PROGRAM, max_tests=6, time_budget=5.0
        ).run()
        assert result.status == "ok"
        assert result.payload["coverage"] > 0
        assert result.payload["tests_run"] >= 1
        assert result.seconds > 0

    def test_parse_error_is_captured(self):
        result = AnalyzeJob(job_id="bad", source="var = = ;").run()
        assert result.status == "error"
        assert result.error
        assert result.payload == {}


class TestSolveJob:
    def test_positive(self):
        result = SolveJob(job_id="s", pattern="(a+)b").run()
        assert result.status == "ok"
        assert result.payload["found"]
        assert result.payload["word"].endswith("b")
        assert result.payload["captures"]["1"]

    def test_negated(self):
        result = SolveJob(job_id="s", pattern="^a+$", negate=True).run()
        assert result.status == "ok"
        assert result.payload["found"]

    def test_unsatisfiable(self):
        result = SolveJob(job_id="s", pattern="^(?=b)a$").run()
        assert result.status == "ok"
        assert not result.payload["found"]


class TestDefaultSolverFactory:
    def test_legacy_native_options_apply_structurally(self):
        from repro.service.jobs import default_solver_factory

        backend = default_solver_factory(timeout=2.0, max_word_length=7)
        assert backend.timeout == 2.0
        assert backend.solver.max_word_length == 7

    def test_options_with_explicit_backend_raise_instead_of_dropping(self):
        from repro.service.jobs import default_solver_factory

        with pytest.raises(TypeError, match="cannot be combined"):
            default_solver_factory(
                backend="smtlib:z3", max_word_length=7
            )


class TestJobBackends:
    def test_solve_job_runs_on_every_backend_spec(self):
        for spec in ("native", "cached:native", "portfolio:native+smtlib"):
            result = SolveJob(
                job_id="s", pattern="(a+)b", backend=spec
            ).run()
            assert result.status == "ok"
            assert result.payload["found"]
            assert result.payload["backend"] == spec
            assert result.payload["backend_tallies"]

    def test_analyze_job_reports_backend_tallies(self):
        result = AnalyzeJob(
            job_id="a",
            source=PROGRAM,
            max_tests=6,
            time_budget=5.0,
            backend="cached:native",
        ).run()
        assert result.status == "ok"
        tallies = result.payload["backend_tallies"]
        assert "cached:native" in tallies
        assert tallies["cached:native"]["queries"] > 0

    def test_bad_backend_spec_is_a_job_error_not_a_crash(self):
        result = SolveJob(job_id="s", pattern="a", backend="bogus").run()
        assert result.status == "error"
        assert "unknown solver backend" in result.error


class TestSurveyJob:
    def test_counts_and_uniques(self):
        files = [
            ["var a = /x(y)/; var b = /\\d+/g;"],
            ["var c = /x(y)/;"],  # duplicate of the capture literal
            [],
        ]
        result = SurveyJob(job_id="v", package_files=files).run()
        assert result.status == "ok"
        p = result.payload
        assert p["n_packages"] == 3
        assert p["with_regex"] == 2
        assert p["total_regexes"] == 3
        assert len(p["uniques"]) == 2
        assert p["with_captures"] == 2


class TestWorkloads:
    def test_survey_workload_shapes(self):
        jobs = survey_workload(n_packages=40, shards=4, solve_cap=10)
        kinds = {type(job) for job in jobs}
        assert kinds == {SurveyJob, SolveJob}
        solves = [j for j in jobs if isinstance(j, SolveJob)]
        assert len(solves) == 10
        surveys = [j for j in jobs if isinstance(j, SurveyJob)]
        assert sum(len(j.package_files) for j in surveys) == 40
        # deterministic for a fixed seed
        again = survey_workload(n_packages=40, shards=4, solve_cap=10)
        assert [j.to_spec() for j in again] == [j.to_spec() for j in jobs]

    def test_analyze_jobs_from_files(self, tmp_path):
        path = tmp_path / "p.js"
        path.write_text(PROGRAM)
        jobs = analyze_jobs_from_files([str(path)], max_tests=3)
        assert len(jobs) == 1
        assert jobs[0].source == PROGRAM
        assert jobs[0].path == str(path)
