"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSolveCommand:
    def test_solve_matching(self, capsys):
        assert main(["solve", r"(a+)b"]) == 0
        out = capsys.readouterr().out
        assert "input:" in out and "C1" in out

    def test_solve_negated(self, capsys):
        assert main(["solve", "^a+$", "--negate"]) == 0
        assert "input:" in capsys.readouterr().out

    def test_solve_unsat(self, capsys):
        assert main(["solve", "^(?=b)a$"]) == 1

    def test_solve_with_portfolio_backend(self, capsys):
        # smtlib degrades to UNKNOWN without a binary; native still wins.
        assert main(
            ["solve", r"(a+)b", "--backend", "portfolio:native+smtlib"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend: portfolio:native+smtlib" in out
        assert "input:" in out

    def test_solve_with_cached_backend(self, capsys):
        assert main(["solve", "^a+$", "--negate",
                     "--backend", "cached:native"]) == 0
        assert "input:" in capsys.readouterr().out

    def test_solve_with_bad_backend_spec(self, capsys):
        assert main(["solve", "a", "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown solver backend" in err

    def test_solve_with_route_backend(self, capsys):
        # Works fully without any SMT binary (classical → native).
        assert main(["solve", r"(a+)b", "--backend", "route:z3"]) == 0
        out = capsys.readouterr().out
        assert "input:" in out and "C1" in out

    def test_solve_with_query_cache(self, tmp_path, capsys):
        store = tmp_path / "queries"
        argv = ["solve", "^a+b$", "--query-cache", str(store)]
        assert main(argv) == 0
        assert any(store.rglob("*.qry"))
        assert main(argv) == 0  # warm run replays the stored answer
        assert "input:" in capsys.readouterr().out

    def test_analyze_with_bad_backend_spec(self, tmp_path, capsys):
        program = tmp_path / "p.js"
        program.write_text("var x = 1;\n")
        assert main(
            ["analyze", str(program), "--backend", "native?nope=1"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestExecCommand:
    def test_match(self, capsys):
        assert main(["exec", r"(\d+)", "abc123"]) == 0
        out = capsys.readouterr().out
        assert "match at 3" in out and "'123'" in out

    def test_no_match(self, capsys):
        assert main(["exec", "z", "abc"]) == 1

    def test_flags(self, capsys):
        assert main(["exec", "ABC", "xabcx", "-f", "i"]) == 0


class TestAnalyzeCommand:
    def test_finds_bug(self, tmp_path, capsys):
        program = tmp_path / "prog.js"
        program.write_text(
            'var s = symbol("s", "");\n'
            'if (s === "boom") { assert(false, "found"); }\n'
        )
        code = main(["analyze", str(program), "--max-tests", "10"])
        out = capsys.readouterr().out
        assert code == 2
        assert "found" in out and "coverage" in out

    def test_clean_program(self, tmp_path, capsys):
        program = tmp_path / "ok.js"
        program.write_text("var x = 1 + 2;\n")
        assert main(["analyze", str(program)]) == 0


class TestBatchCommand:
    def test_batch_files_with_workers(self, tmp_path, capsys):
        a = tmp_path / "a.js"
        a.write_text(
            'var s = symbol("s", "");\n'
            'if (/^a+$/.test(s)) { 1; } else { 2; }\n'
        )
        b = tmp_path / "b.js"
        b.write_text('var t = symbol("t", "");\nif (t === "k") { 1; }\n')
        code = main(
            [
                "batch", str(a), str(b),
                "--workers", "2", "--max-tests", "6",
                "--time-budget", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 ok" in out
        assert "query cache:" in out
        assert "a.js" in out and "b.js" in out

    def test_batch_survey_inline_with_json(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(
            [
                "batch", "--survey", "-n", "40", "--workers", "0",
                "--solve-cap", "8", "--json", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Total Regex" in out
        assert "solved" in out
        import json

        spec = json.loads(out_path.read_text())
        assert spec["statuses"] == {"ok": len(spec["results"])}

    def test_batch_without_input_errors(self, capsys):
        assert main(["batch"]) == 2

    def test_batch_query_cache_persists_across_invocations(
        self, tmp_path, capsys
    ):
        store = tmp_path / "queries"
        argv = [
            "batch", "--survey", "-n", "30", "--workers", "0",
            "--solve-cap", "6", "--query-cache", str(store),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert any(store.rglob("*.qry"))  # the store was populated
        assert main(argv) == 0  # warm invocation replays from disk
        out = capsys.readouterr().out
        assert "0 misses" in out

    def test_batch_with_routed_backend(self, capsys):
        code = main(
            [
                "batch", "--survey", "-n", "30", "--workers", "0",
                "--solve-cap", "6", "--backend", "cached:route:z3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Query routing" in out
        assert "cached:route:z3" in out

    def test_batch_with_session_backend_degrades(self, capsys):
        # No z3 binary: every session query answers UNKNOWN, jobs still
        # complete (found=False), and the batch exits cleanly.
        code = main(
            [
                "batch", "--survey", "-n", "20", "--workers", "0",
                "--solve-cap", "4", "--backend", "session:z3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "session:z3" in out

    def test_batch_with_backend_spec(self, tmp_path, capsys):
        program = tmp_path / "p.js"
        program.write_text(
            'var s = symbol("s", "");\n'
            'if (/^ab?$/.test(s)) { 1; } else { 2; }\n'
        )
        code = main(
            [
                "batch", str(program),
                "--workers", "0", "--max-tests", "6",
                "--time-budget", "5", "--backend", "cached:native",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Solver backends" in out
        assert "cached:native" in out


class TestSurveyCommand:
    def test_small_survey(self, capsys):
        assert main(["survey", "-n", "120"]) == 0
        out = capsys.readouterr().out
        assert "with capture groups" in out and "Backreferences" in out


class TestSmtlibCommand:
    def test_prints_script(self, capsys):
        assert main(["smtlib", "a+b"]) == 0
        out = capsys.readouterr().out
        assert "(set-logic QF_S)" in out and "(check-sat)" in out

    def test_negated(self, capsys):
        assert main(["smtlib", "a", "--negate"]) == 0
        assert "str.in_re" in capsys.readouterr().out


class TestDotCommand:
    def test_prints_digraph(self, capsys):
        assert main(["dot", "(ab|c)*"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph") and "doublecircle" in out
