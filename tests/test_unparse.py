"""Unit tests for the AST unparser."""

import pytest

from repro.regex import RegExp, parse_regex, unparse, unparse_pattern


def roundtrip(source):
    """Parse → unparse → parse; return the re-rendered text."""
    rendered = unparse_pattern(parse_regex(source))
    parse_regex(rendered)  # must stay syntactically valid
    return rendered


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "abc",
            "a|b|c",
            "a*b+c?",
            "a*?b+?c??",
            "(a)(b)",
            "(?:ab)+",
            "(?=x)a",
            "(?!x)a",
            r"\d+\.\d*",
            "[a-z][^0-9]",
            "^start|end$",
            r"\bword\B",
            r"(a|b)\1",
            "a{2,5}",
            "a{3}",
            "a{2,}",
            r"<(\w+)>([0-9]*)<\/\1>",
        ],
    )
    def test_language_preserved(self, source):
        rendered = roundtrip(source)
        probe_words = ["", "a", "b", "ab", "abc", "aa", "start", "end",
                       "word", "<a>1</a>", "aaa", "a.5", "x1"]
        for word in probe_words:
            assert RegExp(source).test(word) == RegExp(rendered).test(word), (
                source, rendered, word
            )

    def test_captures_preserved(self):
        source = r"(a+)(b(c))?"
        rendered = roundtrip(source)
        for word in ("abc", "a", "aabc"):
            left = RegExp(source).exec(word)
            right = RegExp(rendered).exec(word)
            assert (left is None) == (right is None)
            if left is not None:
                assert list(left) == list(right)


class TestPrecedenceParenthesisation:
    def test_alternation_inside_concat(self):
        node = parse_regex("(?:a|b)c").body
        rendered = unparse(node)
        assert RegExp(f"^{rendered}$").test("ac")
        assert not RegExp(f"^{rendered}$").test("abc")

    def test_quantified_concat_grouped(self):
        node = parse_regex("(?:ab)*").body
        rendered = unparse(node)
        assert RegExp(f"^{rendered}$").test("abab")
        assert not RegExp(f"^{rendered}$").test("abb")

    def test_double_quantifier_grouped(self):
        node = parse_regex("(?:a*)?").body
        rendered = unparse(node)
        parse_regex(rendered)  # must not produce the invalid `a*?` + `?`

    def test_empty_body(self):
        node = parse_regex("a|").body
        rendered = unparse(node)
        assert RegExp(f"^(?:{rendered})$").test("")
        assert RegExp(f"^(?:{rendered})$").test("a")
