"""Tests for the worker-pool batch runner."""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.service import (
    AnalyzeJob,
    BatchRunner,
    RunnerConfig,
    SolveJob,
    SurveyJob,
)
from repro.service.jobs import _JobBase
from repro.service.runner import replay_result

PROGRAM = (
    'var s = symbol("s", "");\n'
    'if (/^x+$/.test(s)) { 1; } else { 2; }\n'
)


def small_jobs():
    return [
        SolveJob(job_id="s0", pattern="a+b"),
        AnalyzeJob(
            job_id="a0", source=PROGRAM, max_tests=4, time_budget=5.0
        ),
        SolveJob(job_id="s1", pattern="a+b"),  # duplicate → cache hit
        SurveyJob(job_id="v0", package_files=[["var r = /a(b)/;"]]),
    ]


class TestInline:
    def test_runs_all_kinds_in_order(self):
        report = BatchRunner(workers=0).run(small_jobs())
        assert [r.job_id for r in report.results] == ["s0", "a0", "s1", "v0"]
        assert all(r.status == "ok" for r in report.results)
        assert report.wall_time > 0
        assert report.jobs_per_minute > 0

    def test_cache_shared_across_jobs(self):
        report = BatchRunner(workers=0).run(small_jobs())
        assert report.cache_hits >= 1  # s1 replays s0's query
        assert report.cache_misses >= 1

    def test_cache_can_be_disabled(self):
        report = BatchRunner(workers=0, use_cache=False).run(small_jobs())
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert all(r.status == "ok" for r in report.results)


class TestPool:
    def test_two_workers_deterministic_order(self):
        jobs = small_jobs()
        report = BatchRunner(workers=2, job_timeout=120.0).run(jobs)
        assert [r.job_id for r in report.results] == [j.job_id for j in jobs]
        assert all(r.status == "ok" for r in report.results)
        assert report.workers == 2

    def test_worker_persistent_cache_hits(self):
        # One worker ⇒ every duplicate lands on the same process cache.
        jobs = [
            SolveJob(job_id=f"s{i}", pattern="(ab)+c") for i in range(3)
        ]
        report = BatchRunner(workers=1, job_timeout=120.0).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert report.cache_hits >= 2

    def test_shared_cache_across_workers(self):
        jobs = [
            SolveJob(job_id=f"s{i}", pattern="x[yz]+") for i in range(4)
        ]
        report = BatchRunner(
            workers=2, shared_cache=True, job_timeout=120.0
        ).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert report.cache_hits >= 1

    def test_failure_capture_does_not_poison_batch(self):
        jobs = [
            AnalyzeJob(job_id="bad", source="var = = ;"),
            SolveJob(job_id="good", pattern="ok"),
        ]
        report = BatchRunner(workers=2, job_timeout=120.0).run(jobs)
        assert report.results[0].status == "error"
        assert report.results[1].status == "ok"
        assert report.by_status() == {"error": 1, "ok": 1}


@dataclass
class NapJob(_JobBase):
    """Sleeps, then reports — for as-completed ordering assertions.

    Only usable with the inline runner (``workers=0``): the class is
    test-local, so a pool worker process could not unpickle its spec.
    """

    duration: float = 0.0

    KIND = "nap"

    def _run(self, solver_factory) -> dict:
        time.sleep(self.duration)
        return {"duration": self.duration}


@pytest.fixture
def nap_kind(monkeypatch):
    from repro.service import jobs

    monkeypatch.setitem(jobs._JOB_KINDS, "nap", NapJob)


class TestPersistentPool:
    """The start/submit/run_iter/close seam the serve daemon sits on."""

    def test_submit_before_start_raises(self):
        with pytest.raises(RuntimeError):
            BatchRunner(workers=0).submit(
                SolveJob(job_id="s", pattern="a"), lambda result: None
            )

    def test_submit_delivers_on_completion(self):
        done = threading.Event()
        landed = []
        with BatchRunner(workers=0) as runner:
            assert runner.started
            runner.submit(
                SolveJob(job_id="s0", pattern="a+b"),
                lambda result: (landed.append(result), done.set()),
            )
            assert done.wait(timeout=60.0)
        assert landed[0].job_id == "s0"
        assert landed[0].status == "ok"
        assert not runner.started  # context exit closed the pool

    def test_submit_reuses_the_inline_cache(self):
        done = threading.Event()
        landed = []

        def on_done(result):
            landed.append(result)
            if len(landed) == 2:
                done.set()

        with BatchRunner(workers=0) as runner:
            runner.submit(SolveJob(job_id="s0", pattern="q(r)+s"), on_done)
            runner.submit(SolveJob(job_id="s1", pattern="q(r)+s"), on_done)
            assert done.wait(timeout=60.0)
        assert sum(r.cache_hits for r in landed) >= 1

    def test_run_iter_yields_as_completed(self, nap_kind):
        runner = BatchRunner(
            RunnerConfig(workers=0, inline_concurrency=2)
        )
        jobs = [
            NapJob(job_id="slow", duration=0.5),
            NapJob(job_id="fast", duration=0.0),
        ]
        order = [
            result.job_id for _, result in runner.run_iter(jobs)
        ]
        assert order == ["fast", "slow"]  # not submission order

    def test_run_iter_indices_follow_submission(self, nap_kind):
        runner = BatchRunner(workers=0)
        jobs = [NapJob(job_id=f"n{i}") for i in range(3)]
        pairs = list(runner.run_iter(jobs))
        assert {index for index, _ in pairs} == {0, 1, 2}
        for index, result in pairs:
            assert result.job_id == f"n{index}"

    def test_run_iter_timeout_yields_timeout_result(self, nap_kind):
        runner = BatchRunner(RunnerConfig(workers=0, job_timeout=0.2))
        jobs = [NapJob(job_id="stuck", duration=5.0)]
        (_, result), = runner.run_iter(jobs)
        assert result.status == "timeout"
        assert result.job_id == "stuck"

    def test_pool_mode_submit(self):
        with BatchRunner(workers=2, job_timeout=120.0) as runner:
            done = threading.Event()
            landed = []
            runner.submit(
                SolveJob(job_id="p0", pattern="a[bc]+d"),
                lambda result: (landed.append(result), done.set()),
            )
            assert done.wait(timeout=120.0)
        assert landed[0].status == "ok"
        assert landed[0].payload["found"] is True

    def test_close_is_idempotent(self):
        runner = BatchRunner(workers=0).start()
        runner.close()
        runner.close()
        assert not runner.started


class TestReplayResult:
    def test_replay_marks_and_zeroes(self):
        rep_job = SolveJob(job_id="rep", pattern="a+")
        dup_job = SolveJob(job_id="dup", pattern="a+")
        rep_result = rep_job.run()
        replayed = replay_result(dup_job, rep_job, rep_result)
        assert replayed.job_id == "dup"
        assert replayed.status == rep_result.status
        assert replayed.payload["deduped_from"] == "rep"
        assert replayed.payload["solver_queries"] == 0
        assert replayed.seconds == 0.0
        assert replayed.cache_hits == 0
        # The representative's own result is untouched.
        assert "deduped_from" not in rep_result.payload


class TestConfig:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            BatchRunner(RunnerConfig(workers=-1))
