"""Tests for the worker-pool batch runner."""

import pytest

from repro.service import (
    AnalyzeJob,
    BatchRunner,
    RunnerConfig,
    SolveJob,
    SurveyJob,
)

PROGRAM = (
    'var s = symbol("s", "");\n'
    'if (/^x+$/.test(s)) { 1; } else { 2; }\n'
)


def small_jobs():
    return [
        SolveJob(job_id="s0", pattern="a+b"),
        AnalyzeJob(
            job_id="a0", source=PROGRAM, max_tests=4, time_budget=5.0
        ),
        SolveJob(job_id="s1", pattern="a+b"),  # duplicate → cache hit
        SurveyJob(job_id="v0", package_files=[["var r = /a(b)/;"]]),
    ]


class TestInline:
    def test_runs_all_kinds_in_order(self):
        report = BatchRunner(workers=0).run(small_jobs())
        assert [r.job_id for r in report.results] == ["s0", "a0", "s1", "v0"]
        assert all(r.status == "ok" for r in report.results)
        assert report.wall_time > 0
        assert report.jobs_per_minute > 0

    def test_cache_shared_across_jobs(self):
        report = BatchRunner(workers=0).run(small_jobs())
        assert report.cache_hits >= 1  # s1 replays s0's query
        assert report.cache_misses >= 1

    def test_cache_can_be_disabled(self):
        report = BatchRunner(workers=0, use_cache=False).run(small_jobs())
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert all(r.status == "ok" for r in report.results)


class TestPool:
    def test_two_workers_deterministic_order(self):
        jobs = small_jobs()
        report = BatchRunner(workers=2, job_timeout=120.0).run(jobs)
        assert [r.job_id for r in report.results] == [j.job_id for j in jobs]
        assert all(r.status == "ok" for r in report.results)
        assert report.workers == 2

    def test_worker_persistent_cache_hits(self):
        # One worker ⇒ every duplicate lands on the same process cache.
        jobs = [
            SolveJob(job_id=f"s{i}", pattern="(ab)+c") for i in range(3)
        ]
        report = BatchRunner(workers=1, job_timeout=120.0).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert report.cache_hits >= 2

    def test_shared_cache_across_workers(self):
        jobs = [
            SolveJob(job_id=f"s{i}", pattern="x[yz]+") for i in range(4)
        ]
        report = BatchRunner(
            workers=2, shared_cache=True, job_timeout=120.0
        ).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        assert report.cache_hits >= 1

    def test_failure_capture_does_not_poison_batch(self):
        jobs = [
            AnalyzeJob(job_id="bad", source="var = = ;"),
            SolveJob(job_id="good", pattern="ok"),
        ]
        report = BatchRunner(workers=2, job_timeout=120.0).run(jobs)
        assert report.results[0].status == "error"
        assert report.results[1].status == "ok"
        assert report.by_status() == {"error": 1, "ok": 1}


class TestConfig:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            BatchRunner(RunnerConfig(workers=-1))
