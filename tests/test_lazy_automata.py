"""Lazy-vs-eager equivalence for the on-demand DFA algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import LazyProduct, dfa_for_pattern, lazy_intersect_all

# A pool of classical patterns with overlapping alphabets, so random
# pairs produce non-trivial (sometimes empty) intersections.
PATTERN_POOL = [
    "a*b*",
    "(?:ab)*",
    "a+",
    "[ab]{1,4}",
    "(?:a|b)*abb",
    ".{2,3}",
    "a*",
    "b+a?",
    "(?:aa)*",
    "a(?:aa)*",  # odd-length a-chains: empty against (aa)*
    "[a-c]*",
    "c?[ab]+",
]

WORDS = ["", "a", "b", "ab", "ba", "aa", "abb", "aab", "abab", "aaa", "cab"]


def pool_dfa(index):
    return dfa_for_pattern(PATTERN_POOL[index % len(PATTERN_POOL)])


class TestAgainstEager:
    @given(
        i=st.integers(0, len(PATTERN_POOL) - 1),
        j=st.integers(0, len(PATTERN_POOL) - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_language_equality(self, i, j):
        a, b = pool_dfa(i), pool_dfa(j)
        eager = a.intersect(b)
        assert LazyProduct([a, b]).materialize().equivalent(eager)

    @given(
        i=st.integers(0, len(PATTERN_POOL) - 1),
        j=st.integers(0, len(PATTERN_POOL) - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_shortest_word_lengths_agree(self, i, j):
        a, b = pool_dfa(i), pool_dfa(j)
        eager_witness = a.intersect(b).shortest_word()
        lazy_witness = LazyProduct([a, b]).shortest_word()
        if eager_witness is None:
            assert lazy_witness is None
        else:
            assert lazy_witness is not None
            assert len(lazy_witness) == len(eager_witness)

    @given(
        i=st.integers(0, len(PATTERN_POOL) - 1),
        j=st.integers(0, len(PATTERN_POOL) - 1),
        word=st.sampled_from(WORDS),
    )
    @settings(max_examples=150, deadline=None)
    def test_membership_agrees(self, i, j, word):
        a, b = pool_dfa(i), pool_dfa(j)
        assert LazyProduct([a, b]).accepts_word(word) == (
            a.accepts_word(word) and b.accepts_word(word)
        )

    @given(
        i=st.integers(0, len(PATTERN_POOL) - 1),
        j=st.integers(0, len(PATTERN_POOL) - 1),
        k=st.integers(0, len(PATTERN_POOL) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_three_way_emptiness_agrees(self, i, j, k):
        dfas = [pool_dfa(i), pool_dfa(j), pool_dfa(k)]
        eager = dfas[0].intersect(dfas[1]).intersect(dfas[2])
        assert LazyProduct(dfas).is_empty() == eager.is_empty()

    @given(
        i=st.integers(0, len(PATTERN_POOL) - 1),
        j=st.integers(0, len(PATTERN_POOL) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_enumerated_words_are_members(self, i, j):
        a, b = pool_dfa(i), pool_dfa(j)
        lazy = LazyProduct([a, b])
        for word in lazy.words(max_count=10, max_length=8):
            assert a.accepts_word(word) and b.accepts_word(word)


class TestWords:
    def test_length_ordered(self):
        lazy = LazyProduct(
            [dfa_for_pattern("a*"), dfa_for_pattern("(?:a|b)*")]
        )
        words = list(lazy.words(max_count=5))
        assert words == ["", "a", "aa", "aaa", "aaaa"]

    def test_empty_product_yields_nothing(self):
        lazy = LazyProduct([dfa_for_pattern("a+"), dfa_for_pattern("b+")])
        assert list(lazy.words(max_count=5)) == []

    def test_component_dead_states_pruned_in_finite_language(self):
        lazy = LazyProduct(
            [dfa_for_pattern("[ab]{2}"), dfa_for_pattern("a.")]
        )
        words = sorted(lazy.words(max_count=10))
        assert words == ["aa", "ab"]

    def test_product_dead_regions_pruned_exactly(self):
        # Every component state is live, but the a-parity region of the
        # product is dead: even- vs odd-length a-chains before 'b' never
        # reconcile.  Component-wise pruning alone would walk that
        # region for all max_length levels; the exact co-accessibility
        # filter must cut it at the first step, like Dfa.words' exact
        # live-state filter does on the eager product.
        a = dfa_for_pattern("c|(?:aa)*b")
        b = dfa_for_pattern("c|a(?:aa)*b")
        lazy = LazyProduct([a, b])
        assert list(lazy.words(max_count=10)) == ["c"]
        assert not lazy.co_accessible(lazy.step(lazy.start, "a"))
        # ...and the dead verdict is memoized for the whole region.
        assert lazy._co_accessible[lazy.step(lazy.start, "a")] is False


class TestMaterializationCounter:
    def test_materialize_counts_every_reachable_state(self):
        a, b = dfa_for_pattern("a*b*"), dfa_for_pattern(".{3}")
        lazy = LazyProduct([a, b])
        eager = lazy.materialize()
        assert lazy.states_visited == eager.n_states

    def test_early_exit_materializes_fewer_states_than_eager(self):
        # Both components accept short words near the start, but the
        # full product space is much larger: the BFS must stop early.
        a = dfa_for_pattern("[ab]{0,6}")
        b = dfa_for_pattern("(?:a|b|c)*")
        eager = a.intersect(b)
        lazy = LazyProduct([a, b])
        assert lazy.shortest_word() == ""
        assert lazy.states_visited < eager.n_states

    def test_traversals_never_exceed_eager_product(self):
        for i in range(len(PATTERN_POOL)):
            a = pool_dfa(i)
            b = pool_dfa(i + 1)
            eager = a.intersect(b)
            lazy = LazyProduct([a, b])
            lazy.shortest_word()
            list(lazy.words(max_count=8, max_length=6))
            assert lazy.states_visited <= eager.n_states


class TestIntersectAllFacade:
    def test_empty_input_is_none(self):
        assert lazy_intersect_all([]) is None

    def test_single_component_passes_through(self):
        dfa = dfa_for_pattern("ab")
        assert lazy_intersect_all([dfa]) is dfa

    def test_many_components(self):
        lazy = lazy_intersect_all(
            [
                dfa_for_pattern(r"\w+"),
                dfa_for_pattern(".{2,3}"),
                dfa_for_pattern("a.*"),
            ]
        )
        assert isinstance(lazy, LazyProduct)
        assert lazy.accepts_word("ab")
        assert not lazy.accepts_word("b")
        assert not lazy.is_empty()
