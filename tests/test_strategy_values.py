"""Unit tests for the CUPA scheduler, runtime values and flags."""

import pytest

from repro.dse.strategy import CupaScheduler, QueuedTest
from repro.dse.values import (
    Concolic,
    Environment,
    JSArray,
    JSObject,
    JSUndefined,
    UNDEFINED,
    concrete_of,
    term_of,
)
from repro.constraints import StrVar
from repro.regex.errors import RegexSyntaxError
from repro.regex.flags import Flags


class TestCupaScheduler:
    def test_least_accessed_bucket_first(self):
        scheduler = CupaScheduler(seed=1)
        scheduler.add(QueuedTest({}, origin_site=1))
        scheduler.add(QueuedTest({}, origin_site=1))
        scheduler.add(QueuedTest({}, origin_site=2))
        first = scheduler.pop()
        # After drawing from bucket 1 (or 2), the other bucket has the
        # lower access count and must be drawn next.
        second = scheduler.pop()
        assert first.origin_site != second.origin_site

    def test_size_tracking(self):
        scheduler = CupaScheduler()
        assert not scheduler
        scheduler.add(QueuedTest({}, origin_site=5))
        assert len(scheduler) == 1 and bool(scheduler)
        scheduler.pop()
        assert len(scheduler) == 0
        assert scheduler.pop() is None

    def test_deterministic_with_seed(self):
        def drain(seed):
            scheduler = CupaScheduler(seed=seed)
            for i in range(10):
                scheduler.add(QueuedTest({"i": str(i)}, origin_site=i % 3))
            return [scheduler.pop().inputs["i"] for _ in range(10)]

        assert drain(7) == drain(7)

    def test_rare_buckets_prioritised(self):
        scheduler = CupaScheduler(seed=3)
        for _ in range(5):
            scheduler.add(QueuedTest({}, origin_site=1))
        scheduler.add(QueuedTest({}, origin_site=99))
        drawn_sites = [scheduler.pop().origin_site for _ in range(3)]
        assert 99 in drawn_sites[:2]


class TestValues:
    def test_undefined_singleton(self):
        assert JSUndefined() is UNDEFINED
        assert not UNDEFINED

    def test_concolic_accessors(self):
        var = StrVar("s")
        value = Concolic("hello", term=var)
        assert concrete_of(value) == "hello"
        assert term_of(value) == var
        assert concrete_of("plain") == "plain"
        assert term_of("plain") is None

    def test_array_semantics(self):
        array = JSArray(["a"])
        array.set_index(3, "d")
        assert array.get_index(1) is UNDEFINED
        assert array.get_index(3) == "d"
        assert array.get("length") == 4
        assert array.get_index(-1) is UNDEFINED

    def test_object_get_set(self):
        obj = JSObject({"k": 1})
        assert obj.get("k") == 1
        assert obj.get("missing") is UNDEFINED
        obj.set("k2", 2)
        assert obj.get("k2") == 2

    def test_environment_chain(self):
        outer = Environment()
        outer.declare("x", 1)
        inner = Environment(outer)
        assert inner.lookup("x") == 1
        inner.assign("x", 2)
        assert outer.lookup("x") == 2
        inner.declare("x", 3)  # shadows
        assert inner.lookup("x") == 3 and outer.lookup("x") == 2
        with pytest.raises(NameError):
            inner.lookup("nope")


class TestFlags:
    def test_parse_all(self):
        flags = Flags.parse("gimuy")
        assert flags.global_ and flags.ignore_case and flags.multiline
        assert flags.unicode and flags.sticky

    def test_str_roundtrip(self):
        assert str(Flags.parse("giy")) == "giy"
        assert str(Flags.parse("")) == ""

    def test_duplicate_rejected(self):
        with pytest.raises(RegexSyntaxError):
            Flags.parse("gg")

    def test_unknown_rejected(self):
        with pytest.raises(RegexSyntaxError):
            Flags.parse("q")
        with pytest.raises(RegexSyntaxError):
            Flags.parse("s")  # dotAll is ES2018, not ES6
