"""Unit tests for backreference typing (Definition 2)."""

from repro.regex import parse_regex
from repro.regex.ast import Backreference, walk
from repro.model.backrefs import (
    BackrefType,
    classify_backrefs,
    has_quantified_backref,
)


def types_of(src):
    """All backref types in source order."""
    pattern = parse_regex(src)
    infos = classify_backrefs(pattern)
    return [info.type for _, info in sorted(infos.items())]


class TestEmptyBackrefs:
    def test_forward_reference(self):
        assert types_of(r"\1(a)") == [BackrefType.EMPTY]

    def test_out_of_range_is_literal_not_backref(self):
        # \2 with one group is an octal escape per Annex B, not a backref.
        pattern = parse_regex(r"(a)\2")
        assert not [
            n for n in walk(pattern.body) if isinstance(n, Backreference)
        ] or types_of(r"(a)\2") == [BackrefType.EMPTY]

    def test_self_reference_inside_group(self):
        # /(a\1)*/: the backref sits inside the group it references.
        assert types_of(r"(a\1)*") == [BackrefType.EMPTY]

    def test_reference_inside_own_group_non_quantified(self):
        assert types_of(r"(a\1)") == [BackrefType.EMPTY]


class TestImmutableBackrefs:
    def test_plain_backref(self):
        assert types_of(r"(a)\1") == [BackrefType.IMMUTABLE]

    def test_backref_after_quantified_group(self):
        # Group under +, backref outside: value fixed once matching ends.
        assert types_of(r"(a)+\1") == [BackrefType.IMMUTABLE]

    def test_quantified_backref_to_outside_group(self):
        # \1 under *, but (a) is outside that quantifier → immutable.
        assert types_of(r"(a)(?:\1)*") == [BackrefType.IMMUTABLE]

    def test_xml_listing1_regex(self):
        assert types_of(r"<(\w+)>([0-9]*)<\/\1>") == [BackrefType.IMMUTABLE]


class TestMutableBackrefs:
    def test_paper_example(self):
        # §4.3: in /((a|b)\2)+\1\2/ the first \2 is mutable, the others
        # immutable.
        pattern = parse_regex(r"((a|b)\2)+\1\2")
        infos = classify_backrefs(pattern)
        by_order = [info for _, info in sorted(infos.items())]
        assert [i.index for i in by_order] == [2, 1, 2]
        assert by_order[0].type == BackrefType.MUTABLE
        assert by_order[1].type == BackrefType.IMMUTABLE
        assert by_order[2].type == BackrefType.IMMUTABLE

    def test_mutable_has_common_quantifier(self):
        pattern = parse_regex(r"((a)\2)*")
        infos = classify_backrefs(pattern)
        info = next(iter(infos.values()))
        assert info.type == BackrefType.MUTABLE
        assert info.common_quantifier is not None

    def test_nested_quantifiers(self):
        assert types_of(r"(?:(a)\1)+") == [BackrefType.MUTABLE]


class TestQuantifiedBackrefDetection:
    """The §7.1 survey's 'quantified backreferences' column."""

    def test_positive(self):
        assert has_quantified_backref(parse_regex(r"((a)\2)+"))
        assert has_quantified_backref(parse_regex(r"(a)(?:x\1)*"))

    def test_negative(self):
        assert not has_quantified_backref(parse_regex(r"(a)\1"))
        assert not has_quantified_backref(parse_regex(r"(a)+b\1"))
        assert not has_quantified_backref(parse_regex(r"(a+)b*"))
