"""Tests for feature-based query routing (``route:``) and
``portfolio:auto`` binary detection.

Routing policy under test: captures/backreferences → native,
classical-regex-only → the incremental session, anything else (mixed
lookaheads/anchors) → the portfolio; unroutable formulas and classical
queries with no installed solver binary fall back to native.
"""

import stat

import pytest

from repro.automata.build import erase_captures
from repro.constraints import Eq, InRe, Not, StrConst, StrVar, conj
from repro.constraints.formulas import Formula
from repro.regex import parse_regex
from repro.solver import SAT, Model, SolverResult, SolverStats, UNKNOWN, UNSAT
from repro.solver.backends import (
    NativeBackend,
    RouterBackend,
    classify_formula,
    detect_solver_binaries,
    make_backend,
)
from repro.solver.backends.router import (
    CAPTURES,
    CLASSICAL,
    MIXED,
    UNROUTABLE,
)


def membership(pattern: str, var_name: str = "x", keep_captures=False):
    node = parse_regex(pattern, "").body
    if not keep_captures:
        node = erase_captures(node)
    return InRe(StrVar(var_name), node)


X = StrVar("x")


class _Target:
    """A scriptable routing target that remembers what it saw."""

    def __init__(self, status=SAT, name="target", model=None, available=True):
        self.status = status
        self.name = name
        self.model = model
        self.available = available
        self.calls = 0

    def solve(self, formula):
        self.calls += 1
        return SolverResult(self.status, self.model)


class TestClassifier:
    def test_classical(self):
        assert classify_formula(membership("a+b")) == CLASSICAL
        assert classify_formula(
            conj([membership("[0-9]{2}"), Eq(X, StrConst("42"))])
        ) == CLASSICAL
        assert classify_formula(Not(membership("(?:ab)+"))) == CLASSICAL

    def test_captures(self):
        assert (
            classify_formula(membership("(a+)b", keep_captures=True))
            == CAPTURES
        )

    def test_backreference(self):
        assert (
            classify_formula(membership(r"(a)\1", keep_captures=True))
            == CAPTURES
        )

    def test_mixed(self):
        assert (
            classify_formula(membership("(?=a)a", keep_captures=True))
            == MIXED
        )
        assert (
            classify_formula(membership(r"a\b", keep_captures=True)) == MIXED
        )

    def test_captures_beat_mixed(self):
        # A formula with both features belongs to native: external
        # solvers cannot answer the capture part at all.
        formula = conj(
            [
                membership("(a)b", keep_captures=True),
                membership("(?=c)c", var_name="y", keep_captures=True),
            ]
        )
        assert classify_formula(formula) == CAPTURES

    def test_unroutable(self):
        class Alien(Formula):
            pass

        assert classify_formula(Alien()) == UNROUTABLE

    def test_no_regex_at_all_is_classical(self):
        assert classify_formula(Eq(X, StrConst("a"))) == CLASSICAL


class TestRouting:
    def _router(self, session_available=True, stats=None):
        native = _Target(SAT, "native", Model({X: "a"}))
        session = _Target(
            UNSAT, "session", available=session_available
        )
        portfolio = _Target(UNKNOWN, "portfolio")
        return (
            RouterBackend(native, session, portfolio, stats=stats),
            native,
            session,
            portfolio,
        )

    def test_classical_goes_to_session(self):
        router, native, session, _ = self._router()
        assert router.solve(membership("a+")).status == UNSAT
        assert session.calls == 1 and native.calls == 0

    def test_captures_go_to_native(self):
        router, native, session, _ = self._router()
        result = router.solve(membership("(a+)b", keep_captures=True))
        assert result.status == SAT
        assert native.calls == 1 and session.calls == 0

    def test_mixed_goes_to_portfolio(self):
        router, _, _, portfolio = self._router()
        router.solve(membership("(?=a)a", keep_captures=True))
        assert portfolio.calls == 1

    def test_classical_falls_back_to_native_without_binary(self):
        router, native, session, _ = self._router(session_available=False)
        result = router.solve(membership("a+"))
        assert result.status == SAT  # native's answer, not UNKNOWN
        assert native.calls == 1 and session.calls == 0

    def test_unroutable_falls_back_to_native(self):
        class Alien(Formula):
            pass

        router, native, _, _ = self._router()
        assert router.solve(Alien()).status == SAT
        assert native.calls == 1

    def test_route_tallies_recorded(self):
        stats = SolverStats()
        router, *_ = self._router(stats=stats)
        router.solve(membership("a+"))
        router.solve(membership("(a)b", keep_captures=True))
        router.solve(membership("(?=a)a", keep_captures=True))
        assert stats.route_tallies == {
            "classical->session": 1,
            "captures->native": 1,
            "mixed->portfolio": 1,
        }
        # the router's own outcome tally sits in the backend table too
        assert stats.backend_tallies[router.name].queries == 3

    def test_session_crash_surfaces_as_unknown(self, tmp_path):
        """Satellite: session crash → restart once → UNKNOWN (the
        router does not paper over a crashed session with native)."""
        import textwrap

        from repro.solver.backends import SessionBackend

        path = tmp_path / "dies"
        path.write_text(
            textwrap.dedent(
                """\
                #!/usr/bin/env python3
                import sys
                for line in sys.stdin:
                    if line.strip() == "(check-sat)":
                        sys.exit(1)  # crash mid-query, deterministically
                """
            )
        )
        path.chmod(path.stat().st_mode | stat.S_IXUSR)
        session = SessionBackend(str(path), timeout=1.0)
        router = RouterBackend(
            _Target(SAT, "native", Model({X: "a"})),
            session,
            _Target(UNKNOWN, "portfolio"),
        )
        result = router.solve(membership("a+"))
        assert result.status == UNKNOWN
        assert session.restarts == 1
        router.close()


class TestRouteSpec:
    def test_route_spec_resolves(self):
        backend = make_backend("route:z3")
        assert backend.name == "route:z3"
        assert backend.native.name == "native"
        assert backend.session.name == "session:z3"
        assert backend.portfolio.name == "portfolio:native+session:z3"

    def test_route_default_command(self):
        assert make_backend("route").session.command == "z3"

    def test_route_options_thread_into_targets(self):
        backend = make_backend("route:cvc5?timeout=3")
        assert backend.session.timeout == 3
        assert backend.native.timeout == 3

    def test_portfolio_members_are_distinct_instances(self):
        backend = make_backend("route:z3")
        assert backend.portfolio.members[0] is not backend.native
        assert backend.portfolio.members[1] is not backend.session

    def test_cached_route_composes(self):
        backend = make_backend("cached:route:z3")
        assert backend.name == "cached:route:z3"
        result = backend.solve(membership("a+b"))
        assert result.status == SAT  # no z3 binary → native fallback

    def test_route_works_end_to_end_without_any_binary(self):
        from repro.model.api import find_matching_input

        word, captures = find_matching_input(
            r"^v(\d+)\.(\d+)$", backend="route:z3"
        )
        assert word == f"v{captures[1]}.{captures[2]}"

    def test_bad_option_rejected(self):
        from repro.solver.backends import BackendError

        with pytest.raises(BackendError, match="option"):
            make_backend("route:z3?nope=1")


class TestPortfolioAuto:
    def _with_fake_path(self, monkeypatch, tmp_path, binaries):
        for name in binaries:
            path = tmp_path / name
            path.write_text("#!/bin/sh\nexit 0\n")
            path.chmod(path.stat().st_mode | stat.S_IXUSR)
        monkeypatch.setenv("PATH", str(tmp_path))

    def test_detects_installed_binaries(self, monkeypatch, tmp_path):
        self._with_fake_path(monkeypatch, tmp_path, ["z3", "cvc5"])
        assert detect_solver_binaries() == ["z3", "cvc5"]

    def test_auto_builds_sessions_for_detected_binaries(
        self, monkeypatch, tmp_path
    ):
        self._with_fake_path(monkeypatch, tmp_path, ["z3"])
        backend = make_backend("portfolio:auto")
        assert backend.name == "portfolio:native+session:z3"

    def test_auto_degrades_to_native_with_a_warning(
        self, monkeypatch, tmp_path
    ):
        self._with_fake_path(monkeypatch, tmp_path, [])
        with pytest.warns(UserWarning, match="no SMT solver binary"):
            backend = make_backend("portfolio:auto")
        assert backend.name == "native"
        assert backend.solve(membership("a+")).status == SAT


class TestServiceIntegration:
    def test_route_spec_survives_job_round_trip_and_reports_tallies(self):
        import json

        from repro.service import (
            BatchRunner,
            RunnerConfig,
            SolveJob,
            format_batch_report,
            job_from_spec,
            merge_route_tallies,
            merge_session_tallies,
        )

        jobs = [
            job_from_spec(
                json.loads(
                    json.dumps(
                        SolveJob(
                            job_id=f"s{i}",
                            pattern=pattern,
                            backend="cached:route:z3",
                        ).to_spec()
                    )
                )
            )
            for i, pattern in enumerate(["a+b", r"(\d+)x"])
        ]
        report = BatchRunner(RunnerConfig(workers=0)).run(jobs)
        assert all(r.status == "ok" for r in report.results)
        routes = merge_route_tallies(report.results)
        assert sum(routes.values()) >= 2
        # No z3 binary in the test environment: every classical query
        # falls back to native (captures are erased into classical
        # memberships by the model; CEGAR owns capture semantics).
        assert routes.get("classical->native", 0) >= 2
        text = format_batch_report(report)
        assert "== Query routing" in text
        assert merge_session_tallies(report.results) == {}  # no binary ran

    def test_session_tallies_reach_the_batch_report(self, tmp_path):
        import textwrap

        from repro.service import (
            BatchRunner,
            RunnerConfig,
            SolveJob,
            format_batch_report,
            merge_session_tallies,
        )

        fake = tmp_path / "fakez3"
        fake.write_text(
            textwrap.dedent(
                """\
                #!/usr/bin/env python3
                import re, sys
                for line in sys.stdin:
                    line = line.strip()
                    if line == "(check-sat)":
                        print("unknown", flush=True)
                    else:
                        m = re.match(r'\\(echo "(.*)"\\)', line)
                        if m:
                            print(m.group(1), flush=True)
                """
            )
        )
        fake.chmod(fake.stat().st_mode | stat.S_IXUSR)
        jobs = [
            SolveJob(
                job_id="s0",
                pattern="a+b",
                backend=f"portfolio:native+session:{fake}",
            )
        ]
        report = BatchRunner(RunnerConfig(workers=0)).run(jobs)
        assert report.results[0].status == "ok"
        sessions = merge_session_tallies(report.results)
        assert sessions, report.results[0].payload
        (tally,) = sessions.values()
        assert tally["spawns"] >= 1
        assert "== Incremental sessions" in format_batch_report(report)
