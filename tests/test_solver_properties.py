"""Property-based tests for the string solver's core invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constraints import (
    Eq,
    InRe,
    Not,
    StrConst,
    StrVar,
    concat,
    conj,
)
from repro.regex import parse_regex
from repro.solver import SAT, Solver, UNSAT

_SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_WORDS = st.text(alphabet="ab", max_size=6)


@given(value=_WORDS)
@_SLOW
def test_doubling_equation_solves_iff_even(value):
    """x ++ x = w is SAT exactly when w is a square word."""
    x = StrVar("x")
    result = Solver().solve(Eq(concat(x, x), StrConst(value)))
    n = len(value)
    is_square = n % 2 == 0 and value[: n // 2] == value[n // 2:]
    if is_square:
        assert result.status == SAT
        assert result.model[x] == value[: n // 2]
    else:
        assert result.status != SAT


@given(prefix=_WORDS, suffix=_WORDS)
@_SLOW
def test_concat_of_constants_propagates(prefix, suffix):
    x, w = StrVar("x"), StrVar("w")
    formula = conj(
        [
            Eq(w, concat(StrConst(prefix), x, StrConst(suffix))),
            Eq(w, StrConst(prefix + "mid" + suffix)),
        ]
    )
    result = Solver().solve(formula)
    assert result.status == SAT
    assert result.model[x] == "mid"


@given(value=_WORDS.filter(bool))
@_SLOW
def test_exclusion_of_every_shorter_word_finds_target(value):
    """Excluding all words shorter than the target still converges."""
    x = StrVar("x")
    clauses = [InRe(x, parse_regex("[ab]*").body)]
    seen = set()
    for length in range(len(value)):
        for i in range(min(2 ** length, 8)):
            word = format(i, f"0{max(length,1)}b")[:length].replace(
                "0", "a"
            ).replace("1", "b")
            if word not in seen and word != value and len(word) < len(value):
                seen.add(word)
                clauses.append(Not(Eq(x, StrConst(word))))
    clauses.append(Eq(x, StrConst(value)))
    result = Solver().solve(conj(clauses))
    assert result.status == SAT
    assert result.model[x] == value


@given(word=_WORDS, sep=st.sampled_from(["-", "=", ","]))
@_SLOW
def test_split_around_separator(word, sep):
    """w = x ++ sep ++ y is solvable iff the separator occurs in w."""
    x, y, w = StrVar("x"), StrVar("y"), StrVar("w")
    subject = word[: len(word) // 2] + sep + word[len(word) // 2:]
    formula = conj(
        [
            Eq(w, StrConst(subject)),
            Eq(w, concat(x, StrConst(sep), y)),
        ]
    )
    result = Solver().solve(formula)
    assert result.status == SAT
    model = result.model
    assert model[x] + sep + model[y] == subject


@given(value=_WORDS)
@_SLOW
def test_sat_model_always_verifies(value):
    """Whatever the solver returns as SAT must satisfy the formula under
    independent evaluation."""
    from repro.solver.core import _holds

    x, y = StrVar("x"), StrVar("y")
    node = parse_regex("a*b?").body
    formula = conj(
        [
            InRe(x, node),
            Eq(y, concat(x, StrConst(value))),
            Not(Eq(y, StrConst("forbidden"))),
        ]
    )
    result = Solver().solve(formula)
    if result.status == SAT:
        assert _holds(formula, result.model)


@given(lhs=_WORDS, rhs=_WORDS)
@_SLOW
def test_equality_decision_on_constants(lhs, rhs):
    x = StrVar("x")
    formula = conj([Eq(x, StrConst(lhs)), Eq(x, StrConst(rhs))])
    result = Solver().solve(formula)
    assert (result.status == SAT) == (lhs == rhs)
