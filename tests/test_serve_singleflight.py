"""Cross-client single-flight, fairness, and the serve/batch equivalence.

Gate jobs (see ``serve_testing``) hold the pipeline so coalescing
windows are deterministic: a duplicate submitted while its twin is
queued or in flight *must* coalesce — no sleeps, no timing luck.
"""

import threading

import pytest

from repro.serve.client import ServeClient
from repro.service import jobs
from repro.service.jobs import AnalyzeJob, SolveJob, SurveyJob
from repro.service.report import merge_solve, merge_survey
from repro.service.runner import BatchRunner, RunnerConfig

from serve_testing import (
    GateJob,
    RECORD,
    RecordJob,
    open_gate,
    reset_gates,
    start_daemon,
    stop_started,
    wait_until,
)


@pytest.fixture(autouse=True)
def _serve_teardown():
    reset_gates()
    yield
    reset_gates()
    stop_started()


@pytest.fixture
def gate_kind(monkeypatch):
    monkeypatch.setitem(jobs._JOB_KINDS, "gate", GateJob)
    monkeypatch.setitem(jobs._JOB_KINDS, "record", RecordJob)


class TestSingleFlight:
    def test_duplicate_in_flight_coalesces_across_clients(
        self, tmp_path, gate_kind
    ):
        server, sock_path = start_daemon(tmp_path)
        a = ServeClient(socket_path=sock_path, timeout=15.0)
        b = ServeClient(socket_path=sock_path, timeout=15.0)
        try:
            first = a.submit({"kind": "gate", "gate": "g", "key": "same"})
            wait_until(lambda: server.scheduler.in_flight == 1)
            second = b.submit({"kind": "gate", "gate": "g", "key": "same"})
            assert first["coalesced"] is False
            assert second["coalesced"] is True
            open_gate("g")
            result_a = a.wait_result(first["id"])
            result_b = b.wait_result(second["id"])
            assert result_a.status == result_b.status == "ok"
            # The replayed copy carries its own id and the marker.
            assert result_b.job_id == second["job_id"]
            assert result_b.payload["deduped_from"] == first["job_id"]
            assert "deduped_from" not in result_a.payload
            stats = server.scheduler
            assert stats.executed == 1
            assert stats.coalesced == 1
            assert stats.completed == 1
        finally:
            a.close()
            b.close()

    def test_fan_out_to_many_clients(self, tmp_path, gate_kind):
        server, sock_path = start_daemon(tmp_path)
        clients = [
            ServeClient(socket_path=sock_path, timeout=15.0)
            for _ in range(4)
        ]
        try:
            acks = [
                client.submit({"kind": "gate", "gate": "fan", "key": "k"})
                for client in clients
            ]
            assert [ack["coalesced"] for ack in acks] == [
                False, True, True, True,
            ]
            open_gate("fan")
            results = [
                client.wait_result(ack["id"])
                for client, ack in zip(clients, acks)
            ]
            assert all(r.status == "ok" for r in results)
            assert server.scheduler.executed == 1
            assert server.scheduler.coalesced == 3
        finally:
            for client in clients:
                client.close()

    def test_queued_duplicates_coalesce_without_queue_slots(
        self, tmp_path, gate_kind
    ):
        # One slot in flight, one queue slot — yet any number of
        # duplicates of the queued job are admitted (they attach).
        server, sock_path = start_daemon(
            tmp_path, max_inflight=1, max_queue=1
        )
        a = ServeClient(socket_path=sock_path, timeout=15.0)
        b = ServeClient(socket_path=sock_path, timeout=15.0)
        try:
            a.submit({"kind": "gate", "gate": "head"})  # occupies the pool
            queued = a.submit({"kind": "gate", "gate": "q", "key": "dup"})
            assert server.scheduler.queue_depth == 1  # queue now full
            twin = b.submit({"kind": "gate", "gate": "q", "key": "dup"})
            assert twin["coalesced"] is True
            from repro.serve.client import Rejected

            with pytest.raises(Rejected):  # a *distinct* job is shed
                b.submit({"kind": "gate", "gate": "other"})
            open_gate("head")
            open_gate("q")
            assert a.wait_result(queued["id"]).status == "ok"
            assert b.wait_result(twin["id"]).status == "ok"
        finally:
            a.close()
            b.close()

    def test_owner_disconnect_reassigns_shared_flight(
        self, tmp_path, gate_kind
    ):
        server, sock_path = start_daemon(tmp_path, max_inflight=1)
        owner = ServeClient(socket_path=sock_path, timeout=15.0)
        survivor = ServeClient(socket_path=sock_path, timeout=15.0)
        try:
            owner.submit({"kind": "gate", "gate": "head"})
            shared = owner.submit(
                {"kind": "gate", "gate": "s", "key": "shared"}
            )
            twin = survivor.submit(
                {"kind": "gate", "gate": "s", "key": "shared"}
            )
            assert twin["coalesced"] is True
            owner.close()
            wait_until(lambda: len(server._connections) == 1)
            open_gate("head")
            open_gate("s")
            result = survivor.wait_result(twin["id"])
            assert result.status == "ok"
            # The survivor's copy replays the (gone) owner's execution.
            assert result.payload["deduped_from"] == shared["job_id"]
        finally:
            owner.close()
            survivor.close()

    def test_single_flight_can_be_disabled(self, tmp_path, gate_kind):
        server, sock_path = start_daemon(
            tmp_path, single_flight=False, max_inflight=2
        )
        with ServeClient(socket_path=sock_path, timeout=15.0) as client:
            one = client.submit({"kind": "gate", "gate": "x", "key": "k"})
            two = client.submit({"kind": "gate", "gate": "x", "key": "k"})
            assert two["coalesced"] is False
            open_gate("x")
            done = {rid for rid, _, _ in client.iter_results()}
            assert done == {one["id"], two["id"]}
            assert server.scheduler.executed == 2
            assert server.scheduler.coalesced == 0


class TestFairness:
    def test_round_robin_oldest_job_per_client(self, tmp_path, gate_kind):
        server, sock_path = start_daemon(tmp_path, max_inflight=1)
        a = ServeClient(socket_path=sock_path, timeout=15.0)
        b = ServeClient(socket_path=sock_path, timeout=15.0)
        try:
            a.submit({"kind": "gate", "gate": "head"})  # holds the slot
            for note in ("a1", "a2", "a3"):
                a.submit({"kind": "record", "note": note})
            b.submit({"kind": "record", "note": "b1"})
            wait_until(lambda: server.scheduler.queue_depth == 4)
            open_gate("head")
            wait_until(lambda: server.scheduler.completed == 5)
            # B's lone job is not starved behind A's backlog: dispatch
            # alternates clients, oldest job first within each.
            assert RECORD == ["a1", "b1", "a2", "a3"]
        finally:
            a.close()
            b.close()


class TestServeMatchesBatch:
    def _mixed_jobs(self):
        program = (
            'var s = symbol("s", "");\n'
            'if (/^a(b|c)+$/.test(s)) { 1; } else { 2; }\n'
        )
        mixed = []
        for i in range(4):
            # Every client submits the same duplicated solve patterns —
            # the cross-client coalescing case.
            mixed.append(
                [
                    SolveJob(job_id=f"c{i}-s0", pattern="x(y|z)+w"),
                    SolveJob(job_id=f"c{i}-s1", pattern="x(y|z)+w"),
                    SolveJob(job_id=f"c{i}-s2", pattern="p+q", negate=True),
                    SolveJob(job_id=f"c{i}-s3", pattern=f"u{{{i + 1}}}v"),
                    SolveJob(job_id=f"c{i}-s4", pattern="[0-9]+-[a-f]+"),
                    AnalyzeJob(
                        job_id=f"c{i}-a0", source=program,
                        max_tests=4, time_budget=5.0,
                    ),
                    AnalyzeJob(
                        job_id=f"c{i}-a1", source=program,
                        max_tests=4, time_budget=5.0,
                    ),
                    SurveyJob(
                        job_id=f"c{i}-v0",
                        package_files=[["var r = /a(b)c/; var t = /d+/;"]],
                    ),
                    SolveJob(job_id=f"c{i}-s5", pattern="m[no]p"),
                    SolveJob(job_id=f"c{i}-s6", pattern="x(y|z)+w"),
                ]
            )
        return mixed

    def test_four_clients_forty_jobs_match_batch(
        self, tmp_path, gate_kind
    ):
        per_client = self._mixed_jobs()
        server, sock_path = start_daemon(tmp_path)
        # Hold the pipeline so every duplicate is submitted while its
        # twin is still queued — the coalesce window is deterministic.
        warmup = ServeClient(socket_path=sock_path, timeout=60.0)
        warmup.submit({"kind": "gate", "gate": "open"})
        collected = {}
        errors = []

        def run_client(client_jobs):
            try:
                with ServeClient(
                    socket_path=sock_path, timeout=120.0
                ) as client:
                    results = client.run(
                        [job.to_spec() for job in client_jobs]
                    )
                    for job, result in zip(client_jobs, results):
                        collected[job.job_id] = result
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=run_client, args=(client_jobs,))
            for client_jobs in per_client
        ]
        for thread in threads:
            thread.start()
        wait_until(lambda: server.scheduler.submitted == 41, timeout=30.0)
        open_gate("open")
        for thread in threads:
            thread.join(timeout=120.0)
        warmup.close()
        assert not errors
        assert len(collected) == 40
        assert all(r.status == "ok" for r in collected.values())
        # Duplicates coalesced across clients (counter-asserted): 12
        # copies of x(y|z)+w → 1 execution, 4 copies each of the other
        # repeated specs → 1 execution each.
        assert server.scheduler.coalesced >= 11
        assert server.scheduler.executed < 40

        # The daemon's results aggregate exactly like the same jobs run
        # through the classic batch path (order-independent merging).
        flat = [job for client_jobs in per_client for job in client_jobs]
        batch = BatchRunner(RunnerConfig(workers=0, dedup=True)).run(flat)
        served = list(collected.values())
        batch_solve = merge_solve(
            [r for r in batch.results if r.kind == "solve"]
        )
        serve_solve = merge_solve(
            [r for r in served if r.kind == "solve"]
        )
        for field in ("jobs", "solved", "unsolved", "failed_jobs"):
            assert serve_solve[field] == batch_solve[field]
        batch_survey = merge_survey(
            [r for r in batch.results if r.kind == "survey"]
        )
        serve_survey = merge_survey(
            [r for r in served if r.kind == "survey"]
        )
        assert serve_survey.total_regexes == batch_survey.total_regexes
        assert serve_survey.unique_regexes == batch_survey.unique_regexes
        solved_words = {
            r.job_id: r.payload.get("word")
            for r in served
            if r.kind == "solve"
        }
        batch_words = {
            r.job_id: r.payload.get("word")
            for r in batch.results
            if r.kind == "solve"
        }
        assert solved_words == batch_words
