"""Tests for the process-wide session pool (``solver/backends/pool.py``).

No real z3 is assumed: fake interactive solver executables (as in
``test_session_backend.py``) exercise leasing, cross-job process reuse,
thread contention, crash semantics, and the acceptance equivalence
suite — refinement-stream answers through the pool must equal the
one-shot ``smtlib:`` backend's on the same corpus.
"""

import stat
import textwrap
import time as time_module
import threading

import pytest

from repro.automata.build import erase_captures
from repro.constraints import InRe, StrVar
from repro.regex import parse_regex
from repro.solver import SAT, SolverStats, UNKNOWN, UNSAT
from repro.solver.backends import (
    PooledSessionBackend,
    SessionBackend,
    SessionPool,
    SmtLibBackend,
    get_session_pool,
    make_backend,
    reset_session_pool,
)


def membership(pattern: str, var_name: str = "x"):
    node = erase_captures(parse_regex(pattern, "").body)
    return InRe(StrVar(var_name), node)


#: Interactive fake: answers every check-sat with VERDICT, echoes
#: markers; optionally sleeps per query and aborts hard if it ever sees
#: nested scopes (two pushes without a pop — cross-talk detector).
_FAKE = textwrap.dedent(
    '''\
    #!/usr/bin/env python3
    import re, sys, time
    VERDICT = {verdict!r}
    DELAY = {delay!r}
    depth = 0
    for line in sys.stdin:
        line = line.strip()
        if line == "(push 1)":
            depth += 1
            if depth > 1:
                sys.exit(13)  # interleaved scopes: cross-talk
        elif line == "(pop 1)":
            depth -= 1
        elif line == "(check-sat)":
            if DELAY:
                time.sleep(DELAY)
            print(VERDICT, flush=True)
        elif line.startswith("(get-value"):
            print("()", flush=True)
        else:
            m = re.match(r'\\(echo "(.*)"\\)', line)
            if m:
                print(m.group(1), flush=True)
    '''
)


def fake_solver(tmp_path, verdict="unsat", delay=0.0, name="fakepool"):
    path = tmp_path / name
    path.write_text(_FAKE.format(verdict=verdict, delay=delay))
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class TestPoolLeasing:
    def test_sessions_amortize_across_backend_instances(self, tmp_path):
        """The tentpole claim: two 'jobs' (= two backend instances with
        the same spec) share one live solver process."""
        cmd = fake_solver(tmp_path)
        pool = SessionPool()
        stats = SolverStats()
        job_a = PooledSessionBackend(cmd, stats=stats, pool=pool)
        job_b = PooledSessionBackend(cmd, stats=stats, pool=pool)
        for backend in (job_a, job_b, job_a, job_b):
            assert backend.solve(membership("a+b")).status == UNSAT
        tally = stats.session_summary()[f"session:{cmd}"]
        assert tally["spawns"] == 1  # one process served both jobs
        assert tally["queries"] == 4
        assert tally["checkouts"] == 4
        assert tally["queries_per_spawn"] == 4.0
        assert pool.idle_count(cmd) == 1
        pool.close()
        assert pool.idle_count() == 0

    def test_distinct_specs_get_distinct_sessions(self, tmp_path):
        pool = SessionPool()
        cmd = fake_solver(tmp_path)
        fast = PooledSessionBackend(cmd, timeout=5.0, pool=pool)
        slow = PooledSessionBackend(cmd, timeout=9.0, pool=pool)
        assert fast.solve(membership("a")).status == UNSAT
        assert slow.solve(membership("a")).status == UNSAT
        assert pool.idle_count(cmd) == 2  # keyed by (cmd, timeout, reset)
        pool.close()

    def test_missing_binary_never_checks_out(self):
        pool = SessionPool()
        backend = PooledSessionBackend("no-such-solver-anywhere", pool=pool)
        assert not backend.available
        assert backend.solve(membership("a")).status == UNKNOWN
        assert "not installed" in backend.last_error
        assert pool.checkouts == 0

    def test_close_is_a_noop_for_pooled_backends(self, tmp_path):
        cmd = fake_solver(tmp_path)
        pool = SessionPool()
        backend = PooledSessionBackend(cmd, pool=pool)
        assert backend.solve(membership("a")).status == UNSAT
        backend.close()  # the job ends; the pool keeps the session
        assert pool.idle_count(cmd) == 1
        backend2 = PooledSessionBackend(cmd, pool=pool)
        stats = SolverStats()
        backend2.stats = stats
        assert backend2.solve(membership("b")).status == UNSAT
        assert stats.session_summary()[backend2.name]["spawns"] == 0
        pool.close()

    def test_restart_once_per_query_preserved(self, tmp_path):
        # Crashes on the first check-sat of every process unless a
        # state file marks the respawn (same scheme as the raw session
        # backend's crash tests).
        state = tmp_path / "crashed-once"
        body = textwrap.dedent(
            f'''\
            #!/usr/bin/env python3
            import os, re, sys
            state = {str(state)!r}
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    if not os.path.exists(state):
                        open(state, "w").close()
                        sys.exit(1)
                    print("unsat", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        path = tmp_path / "crashonce"
        path.write_text(body)
        path.chmod(path.stat().st_mode | stat.S_IXUSR)
        pool = SessionPool()
        stats = SolverStats()
        backend = PooledSessionBackend(str(path), stats=stats, pool=pool)
        assert backend.solve(membership("a+")).status == UNKNOWN
        assert backend.solve(membership("a+")).status == UNSAT
        tally = stats.session_summary()[backend.name]
        assert tally["restarts"] == 1
        assert tally["spawns"] == 2
        pool.close()

    def test_stats_rebound_per_lease(self, tmp_path):
        """Each job's stats see only that job's share of the shared
        session's lifecycle."""
        cmd = fake_solver(tmp_path)
        pool = SessionPool()
        stats_a, stats_b = SolverStats(), SolverStats()
        job_a = PooledSessionBackend(cmd, stats=stats_a, pool=pool)
        job_b = PooledSessionBackend(cmd, stats=stats_b, pool=pool)
        assert job_a.solve(membership("a")).status == UNSAT
        assert job_b.solve(membership("b")).status == UNSAT
        name = job_a.name
        assert stats_a.session_summary()[name]["spawns"] == 1
        assert stats_a.session_summary()[name]["queries"] == 1
        assert stats_b.session_summary()[name]["spawns"] == 0  # reused
        assert stats_b.session_summary()[name]["queries"] == 1
        assert stats_b.session_summary()[name]["checkouts"] == 1
        pool.close()


class TestPoolContention:
    def test_concurrent_checkouts_have_no_cross_talk(self, tmp_path):
        """Interleaved queries from many threads: every answer arrives,
        and no session ever sees nested push scopes (the fake solver
        exits hard on that, which would surface as UNKNOWNs)."""
        cmd = fake_solver(tmp_path, delay=0.002)
        pool = SessionPool(max_per_key=3)
        stats = SolverStats()
        backend = PooledSessionBackend(cmd, stats=stats, pool=pool)
        errors = []

        def worker(i):
            for j in range(6):
                result = backend.solve(membership("a+b", f"v{i}x{j}"))
                if result.status != UNSAT:
                    errors.append((i, j, result.status, backend.last_error))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        tally = stats.session_summary()[backend.name]
        assert tally["queries"] == 24
        assert tally["checkouts"] == 24
        assert 1 <= tally["spawns"] <= 3  # never beyond the cap
        assert pool.overflows == 0
        pool.close()

    def test_saturated_pool_waits_then_serves(self, tmp_path):
        cmd = fake_solver(tmp_path, delay=0.05)
        pool = SessionPool(max_per_key=1, wait_timeout=5.0)
        backend = PooledSessionBackend(cmd, pool=pool)
        results = []

        def worker(i):
            results.append(backend.solve(membership("a", f"w{i}")).status)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [UNSAT, UNSAT, UNSAT]
        assert pool.waits >= 1  # someone blocked on the request queue
        assert pool.idle_count(cmd) == 1  # still one process total
        pool.close()

    def test_overflow_past_wait_timeout_keeps_progress(self, tmp_path):
        cmd = fake_solver(tmp_path, delay=0.3)
        pool = SessionPool(max_per_key=1, wait_timeout=0.01)
        backend = PooledSessionBackend(cmd, pool=pool)
        statuses = []

        def worker(i):
            statuses.append(backend.solve(membership("a", f"o{i}")).status)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert statuses == [UNSAT, UNSAT]
        assert pool.overflows >= 1
        # Overflow sessions are closed on release, not pooled.
        assert pool.idle_count(cmd) == 1
        pool.close()


class TestSpecAndGlobalPool:
    def test_session_spec_is_pooled_by_default(self):
        backend = make_backend("session:z3?timeout=3&reset_every=64")
        assert isinstance(backend, PooledSessionBackend)
        assert backend.name == "session:z3"
        assert backend.timeout == 3
        assert backend.reset_every == 64

    def test_pooled_0_restores_private_sessions(self):
        backend = make_backend("session:z3?pooled=0")
        assert isinstance(backend, SessionBackend)
        assert backend.name == "session:z3"

    def test_route_session_target_is_pooled(self):
        backend = make_backend("route:z3")
        assert isinstance(backend.session, PooledSessionBackend)
        assert backend.session.name == "session:z3"

    def test_close_attributes_lifetime_to_last_lessee(self, tmp_path):
        cmd = fake_solver(tmp_path)
        pool = SessionPool()
        stats = SolverStats()
        backend = PooledSessionBackend(cmd, stats=stats, pool=pool)
        assert backend.solve(membership("a")).status == UNSAT
        assert stats.session_summary()[backend.name]["seconds"] == 0.0
        pool.close()  # the idle session dies; its lifetime lands
        assert stats.session_summary()[backend.name]["seconds"] > 0.0

    def test_overflow_lifetime_reaches_the_lessee(self, tmp_path):
        cmd = fake_solver(tmp_path, delay=0.2)
        pool = SessionPool(max_per_key=1, wait_timeout=0.01)
        stats = SolverStats()
        backend = PooledSessionBackend(cmd, stats=stats, pool=pool)
        statuses = []

        def worker(i):
            statuses.append(backend.solve(membership("a", f"l{i}")).status)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert statuses == [UNSAT, UNSAT]
        assert pool.overflows >= 1
        # The overflow session closed under its lessee's sink.
        assert stats.session_summary()[backend.name]["seconds"] > 0.0
        pool.close()

    def test_release_after_close_does_not_repool(self, tmp_path):
        """An in-flight lease (e.g. a portfolio straggler) released
        after close() must close its session, not strand it in the
        dead pool."""
        cmd = fake_solver(tmp_path)
        pool = SessionPool()
        lease = pool.checkout(cmd, timeout=5.0, reset_every=512)
        session = lease.__enter__()
        assert session.solve(membership("a")).status == UNSAT
        proc = session._proc
        pool.close()  # nothing idle yet; the lease is still out
        lease.__exit__(None, None, None)
        assert pool.idle_count() == 0  # not re-pooled
        assert session._proc is None  # closed on release
        assert proc.poll() is not None  # subprocess actually dead

    def test_atexit_hook_registers_once_across_resets(self, monkeypatch):
        import atexit as atexit_module

        from repro.solver.backends import pool as pool_module

        registered = []
        monkeypatch.setattr(
            atexit_module, "register", lambda fn: registered.append(fn)
        )
        monkeypatch.setattr(pool_module, "_ATEXIT_REGISTERED", False)
        for _ in range(3):
            reset_session_pool()
            get_session_pool()
        assert len(registered) == 1
        assert registered[0] is pool_module._close_global_pool

    def test_global_pool_reset(self, tmp_path):
        cmd = fake_solver(tmp_path)
        backend = make_backend(f"session:{cmd}")
        assert backend.solve(membership("a")).status == UNSAT
        assert get_session_pool().idle_count(cmd) == 1
        reset_session_pool()
        assert get_session_pool().idle_count(cmd) == 0


class TestEquivalenceWithOneShot:
    """Satellite: refinement-stream answers via the pool equal the
    one-shot ``smtlib:`` backend's on the same corpus — with the whole
    corpus amortized onto one spawn."""

    def _corpus(self):
        from repro.model.api import SymbolicRegExp
        from repro.model.cegar import CegarSolver
        from repro.solver import Solver

        # Real refinement streams: record every query CEGAR poses
        # (initial + refined) for a few capture-bearing patterns.
        class Recorder:
            def __init__(self):
                self.solver = Solver(timeout=5.0)
                self.formulas = []

            def solve(self, formula):
                self.formulas.append(formula)
                return self.solver.solve(formula)

        recorder = Recorder()
        for pattern in [r"^(a*)a$", r"^v(\d+)\.(\d+)$", r"(a+)(b?)c"]:
            regexp = SymbolicRegExp(pattern, "")
            var = StrVar(f"in!{len(recorder.formulas)}")
            model = regexp.exec_model(var)
            CegarSolver(solver=recorder).solve(
                model.match_formula, [model.constraint]
            )
        return recorder.formulas[:10]

    def _canned(self, formulas):
        from repro.constraints.printer import _string_literal, _variables
        from repro.solver import Solver

        responses = []
        for formula in formulas:
            result = Solver(timeout=5.0).solve(formula)
            if result.status != SAT:
                responses.append((result.status, "()"))
                continue
            pairs = []
            for var in sorted(_variables(formula), key=lambda v: v.name):
                value = result.model[var]
                defined = "false" if value is None else "true"
                literal = _string_literal(value or "")
                name = (
                    var.name
                    if all(c.isalnum() or c in "_.$" for c in var.name)
                    else f"|{var.name}|"
                )
                defname = (
                    f"{name[:-1]}.def|" if name.endswith("|")
                    else f"{name}.def"
                )
                pairs.append(f"({name} {literal})")
                pairs.append(f"({defname} {defined})")
            responses.append((SAT, "(" + " ".join(pairs) + ")"))
        return responses

    def _scripted(self, tmp_path, responses, name, per_process):
        counter = tmp_path / f"{name}.counter"
        counter.write_text("0")
        body = textwrap.dedent(
            f'''\
            #!/usr/bin/env python3
            import re, sys
            RESPONSES = {responses!r}
            COUNTER = {str(counter)!r}
            PER_PROCESS = {per_process!r}

            def take():
                with open(COUNTER) as f:
                    i = int(f.read().strip() or "0")
                with open(COUNTER, "w") as f:
                    f.write(str(i + 1))
                return RESPONSES[i % len(RESPONSES)]

            if PER_PROCESS:
                verdict, model = take()
                print(verdict, flush=True)
                print(model, flush=True)
                sys.exit(0)
            current = [None]
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    current[0] = take()
                    print(current[0][0], flush=True)
                elif line.startswith("(get-value"):
                    print(current[0][1] if current[0] else "()", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        path = tmp_path / name
        path.write_text(body)
        path.chmod(path.stat().st_mode | stat.S_IXUSR)
        return str(path)

    def test_pool_matches_one_shot_on_refined_corpus(self, tmp_path):
        formulas = self._corpus()
        responses = self._canned(formulas)
        pool_cmd = self._scripted(
            tmp_path, responses, "replay-pool", per_process=False
        )
        oneshot_cmd = self._scripted(
            tmp_path, responses, "replay-oneshot", per_process=True
        )
        pool = SessionPool(max_per_key=1)  # deterministic replay order
        stats = SolverStats()
        pooled = PooledSessionBackend(pool_cmd, stats=stats, pool=pool)
        oneshot = SmtLibBackend(oneshot_cmd, timeout=10.0)
        for formula in formulas:
            through_pool = pooled.solve(formula)
            spawned = oneshot.solve(formula)
            assert through_pool.status == spawned.status, (
                pooled.last_error,
                oneshot.last_error,
            )
            if through_pool.model is None:
                assert spawned.model is None
            else:
                assert (
                    through_pool.model.assignment
                    == spawned.model.assignment
                )
        tally = stats.session_summary()[pooled.name]
        assert tally["spawns"] == 1  # whole corpus on one process
        assert tally["queries"] == len(formulas)
        pool.close()


class TestIdleReaper:
    """``--session-idle-s``: parked sessions are closed, not pinned."""

    def _park_one(self, tmp_path, pool):
        cmd = fake_solver(tmp_path)
        backend = PooledSessionBackend(cmd, pool=pool)
        assert backend.solve(membership("a+b")).status == UNSAT
        assert pool.idle_count(cmd) == 1
        return cmd

    def test_reap_idle_closes_stale_sessions(self, tmp_path):
        pool = SessionPool()
        cmd = self._park_one(tmp_path, pool)
        assert pool.reap_idle(max_idle=0.0) == 1
        assert pool.reaped == 1
        assert pool.idle_count(cmd) == 0
        # The next checkout simply spawns fresh.
        stats = SolverStats()
        backend = PooledSessionBackend(cmd, stats=stats, pool=pool)
        assert backend.solve(membership("c+d")).status == UNSAT
        assert stats.session_summary()[backend.name]["spawns"] == 1
        pool.close()

    def test_recently_parked_sessions_survive(self, tmp_path):
        pool = SessionPool()
        cmd = self._park_one(tmp_path, pool)
        assert pool.reap_idle(max_idle=60.0) == 0
        assert pool.idle_count(cmd) == 1
        pool.close()

    def test_unarmed_reap_is_a_noop(self, tmp_path):
        pool = SessionPool()
        cmd = self._park_one(tmp_path, pool)
        assert pool.reap_idle() == 0  # no idle_timeout armed
        assert pool.idle_count(cmd) == 1
        pool.close()

    def test_leased_sessions_are_never_reaped(self, tmp_path):
        pool = SessionPool()
        cmd = fake_solver(tmp_path)
        with pool.checkout(cmd):
            assert pool.reap_idle(max_idle=0.0) == 0
        assert pool.idle_count(cmd) == 1  # released after the reap
        pool.close()

    def test_reaper_thread_closes_idle_sessions(self, tmp_path):
        pool = SessionPool()
        cmd = self._park_one(tmp_path, pool)
        pool.set_idle_timeout(0.05)
        deadline = time_module.monotonic() + 10.0
        while pool.idle_count(cmd) and time_module.monotonic() < deadline:
            threading.Event().wait(0.02)
        assert pool.idle_count(cmd) == 0
        assert pool.reaped >= 1
        pool.close()

    def test_close_stops_the_reaper(self, tmp_path):
        pool = SessionPool()
        pool.set_idle_timeout(0.05)
        reaper = pool._reaper
        assert reaper is not None and reaper.is_alive()
        pool.close()
        reaper.join(timeout=5.0)
        assert not reaper.is_alive()
