"""Tests for the CEGAR refinement-stream fast path.

Covers mid-loop re-routing (``RouterBackend.route_refined`` /
``solve_refined``), refined-query caching through the ``cached:``
decorator and ``CegarSolver.query_cache``, dedup keyed on the refined
query stream, the capped persistent query store, and the hashed survey
unique-merge payload.
"""

import os
import time

import pytest

from repro.automata.build import erase_captures
from repro.constraints import Eq, InRe, StrConst, StrVar, conj
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver, refinement_stream_fingerprint
from repro.regex import parse_regex
from repro.solver import (
    Model,
    SAT,
    Solver,
    SolverResult,
    SolverStats,
    UNKNOWN,
    UNSAT,
)
from repro.solver.backends import (
    CachedBackend,
    QueryCache,
    QueryDiskStore,
    RouterBackend,
)


X = StrVar("x")


def membership(pattern: str, var_name: str = "x", keep_captures=False):
    node = parse_regex(pattern, "").body
    if not keep_captures:
        node = erase_captures(node)
    return InRe(StrVar(var_name), node)


class _Target:
    """A scriptable routing target that remembers what it saw."""

    def __init__(self, status=SAT, name="target", model=None, available=True):
        self.status = status
        self.name = name
        self.model = model
        self.available = available
        self.calls = 0

    def solve(self, formula):
        self.calls += 1
        return SolverResult(self.status, self.model)


class TestRefinedRouting:
    def _router(self, session_available=True, stats=None, session=None):
        native = _Target(SAT, "native", Model({X: "a"}))
        session = session or _Target(
            UNSAT, "session", available=session_available
        )
        portfolio = _Target(UNKNOWN, "portfolio")
        return (
            RouterBackend(native, session, portfolio, stats=stats),
            native,
            session,
            portfolio,
        )

    def test_refined_classical_goes_to_session(self):
        stats = SolverStats()
        router, native, session, _ = self._router(stats=stats)
        assert router.solve_refined(membership("a+")).status == UNSAT
        assert session.calls == 1 and native.calls == 0
        assert stats.route_tallies == {"refined-classical->session": 1}

    def test_refined_captures_migrate_to_session(self):
        """The tentpole migration: a captures query routes native
        initially but its refined stream goes to the session (groups
        print transparently; their meaning rides in word equations)."""
        stats = SolverStats()
        router, native, session, _ = self._router(stats=stats)
        formula = membership("(a+)b", keep_captures=True)
        assert router.solve(formula).status == SAT  # initial → native
        assert router.solve_refined(formula).status == UNSAT  # → session
        assert native.calls == 1 and session.calls == 1
        assert stats.route_tallies == {
            "captures->native": 1,
            "refined-captures->session": 1,
        }

    def test_refined_backrefs_stay_native(self):
        router, native, session, _ = self._router()
        formula = membership(r"(a)\1", keep_captures=True)
        assert router.solve_refined(formula).status == SAT
        assert native.calls == 1 and session.calls == 0

    def test_refined_mixed_stays_on_portfolio(self):
        router, _, session, portfolio = self._router()
        router.solve_refined(membership("(?=a)a", keep_captures=True))
        assert portfolio.calls == 1 and session.calls == 0

    def test_refined_captures_plus_mixed_keep_native(self):
        # Captures beat mixed on the initial route (native); the
        # refined route must not hand the unprintable combination to
        # the portfolio either.
        router, native, session, portfolio = self._router()
        formula = conj(
            [
                membership("(a)b", keep_captures=True),
                membership("(?=c)c", var_name="y", keep_captures=True),
            ]
        )
        assert router.solve(formula).status == SAT
        assert router.solve_refined(formula).status == SAT
        assert native.calls == 2
        assert session.calls == 0 and portfolio.calls == 0

    def test_refined_session_unknown_falls_back_to_native(self):
        stats = SolverStats()
        unknown_session = _Target(UNKNOWN, "session")
        router, native, session, _ = self._router(
            stats=stats, session=unknown_session
        )
        result = router.solve_refined(membership("a+"))
        assert result.status == SAT  # native's answer, not UNKNOWN
        assert session.calls == 1 and native.calls == 1
        assert stats.route_tallies == {
            "refined-classical->session": 1,
            "refined-classical->native-fallback": 1,
        }

    def test_refined_without_binary_goes_native(self):
        router, native, session, _ = self._router(session_available=False)
        assert router.solve_refined(membership("a+")).status == SAT
        assert native.calls == 1 and session.calls == 0

    def test_initial_route_unchanged_for_captures(self):
        router, native, session, _ = self._router()
        router.solve(membership("(a+)b", keep_captures=True))
        assert native.calls == 1 and session.calls == 0


class TestRefinedCaching:
    class _Counting:
        def __init__(self, status=UNSAT):
            self.status = status
            self.solves = 0
            self.refined = 0

        def solve(self, formula):
            self.solves += 1
            return SolverResult(self.status)

        def solve_refined(self, formula):
            self.refined += 1
            return SolverResult(self.status)

    def test_cached_solve_refined_hits_and_delegates(self):
        inner = self._Counting()
        backend = CachedBackend(inner, cache=QueryCache())
        formula = membership("a+b")
        assert backend.solve_refined(formula).status == UNSAT
        assert inner.refined == 1 and inner.solves == 0  # delegated
        assert backend.solve_refined(formula).status == UNSAT
        assert inner.refined == 1  # second refined query replayed
        assert backend.hits == 1

    def test_refined_and_initial_share_the_cache(self):
        inner = self._Counting()
        backend = CachedBackend(inner, cache=QueryCache())
        formula = membership("a+b")
        backend.solve(formula)
        assert backend.solve_refined(formula).status == UNSAT
        assert inner.solves == 1 and inner.refined == 0  # hit replayed

    def test_cegar_dispatches_refined_queries(self):
        """From the second iteration on, the loop calls solve_refined."""

        class Script:
            def __init__(self):
                self.solve_calls = 0
                self.refined_calls = 0
                self.native = Solver(timeout=5.0)

            def solve(self, formula):
                self.solve_calls += 1
                return self.native.solve(formula)

            def solve_refined(self, formula):
                self.refined_calls += 1
                return self.native.solve(formula)

        script = Script()
        # The paper's own greediness trap (§3.4): the model admits
        # C1="a", the concrete matcher never produces it — refines.
        regexp = SymbolicRegExp(r"^a*(a)?$", "")
        model = regexp.exec_model(StrVar("in!refined"))
        result = CegarSolver(solver=script).solve(
            model.match_formula, [model.constraint]
        )
        assert result.status == SAT
        assert result.refinements >= 1
        assert script.solve_calls == 1  # only the initial query
        assert script.refined_calls == result.refinements

    def test_cegar_query_cache_replays_refinement_prefixes(self):
        """Two flips posing the same problem: the second run's queries
        — initial and refined — all replay from the shared cache."""

        class Counting:
            def __init__(self):
                self.calls = 0
                self.native = Solver(timeout=5.0)

            def solve(self, formula):
                self.calls += 1
                return self.native.solve(formula)

        cache = QueryCache()
        regexp = SymbolicRegExp(r"^a*(a)?$", "")
        model = regexp.exec_model(StrVar("in!cacheflip"))

        first = Counting()
        result = CegarSolver(solver=first, query_cache=cache).solve(
            model.match_formula, [model.constraint]
        )
        assert result.status == SAT
        assert result.refinements > 0
        assert first.calls == result.refinements + 1

        second = Counting()
        replay = CegarSolver(solver=second, query_cache=cache).solve(
            model.match_formula, [model.constraint]
        )
        assert replay.status == SAT
        assert replay.refinements == result.refinements
        assert second.calls == 0  # the whole stream hit the cache

    def _replay_solver(self, tmp_path, responses):
        """A fake session replaying canned (verdict, model) pairs, one
        per ``(check-sat)`` (the scheme of ``test_session_backend``)."""
        import stat
        import textwrap

        counter = tmp_path / "replay.counter"
        counter.write_text("0")
        body = textwrap.dedent(
            f'''\
            #!/usr/bin/env python3
            import re, sys
            RESPONSES = {responses!r}
            COUNTER = {str(counter)!r}

            def take():
                with open(COUNTER) as f:
                    i = int(f.read().strip() or "0")
                with open(COUNTER, "w") as f:
                    f.write(str(i + 1))
                return RESPONSES[i % len(RESPONSES)]

            current = [None]
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    current[0] = take()
                    print(current[0][0], flush=True)
                elif line.startswith("(get-value"):
                    print(current[0][1] if current[0] else "()", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        path = tmp_path / "replaysession"
        path.write_text(body)
        path.chmod(path.stat().st_mode | stat.S_IXUSR)
        return str(path)

    def _canned_stream(self, exec_model):
        """Record the CEGAR query stream natively; render each answer
        as solver stdout the replay fake can serve."""
        from repro.constraints.printer import _string_literal, _variables

        class Recorder:
            def __init__(self):
                self.native = Solver(timeout=5.0)
                self.formulas = []

            def solve(self, formula):
                self.formulas.append(formula)
                return self.native.solve(formula)

        recorder = Recorder()
        native_result = CegarSolver(solver=recorder).solve(
            exec_model.match_formula, [exec_model.constraint]
        )
        assert native_result.refinements >= 1  # the scenario's premise
        responses = []
        for formula in recorder.formulas:
            result = Solver(timeout=5.0).solve(formula)
            if result.status != SAT:
                responses.append((result.status, "()"))
                continue
            pairs = []
            for var in sorted(_variables(formula), key=lambda v: v.name):
                value = result.model[var]
                defined = "false" if value is None else "true"
                literal = _string_literal(value or "")
                name = (
                    var.name
                    if all(c.isalnum() or c in "_.$" for c in var.name)
                    else f"|{var.name}|"
                )
                defname = (
                    f"{name[:-1]}.def|" if name.endswith("|")
                    else f"{name}.def"
                )
                pairs.append(f"({name} {literal})")
                pairs.append(f"({defname} {defined})")
            responses.append((SAT, "(" + " ".join(pairs) + ")"))
        return responses, native_result

    def test_route_tallies_show_migration_end_to_end(self, tmp_path):
        """Integration: the CEGAR loop over route:<replay> on a
        refinement-prone pattern — the whole stream (initial + refined)
        is decided by the session, the refined share tallied on the
        ``refined-`` route, and the answer matches the native run."""
        regexp = SymbolicRegExp(r"^a*(a)?$", "")
        input_var = StrVar("input!e2e")
        exec_model = regexp.exec_model(input_var)
        responses, native_result = self._canned_stream(exec_model)
        fake = self._replay_solver(tmp_path, responses)
        stats = SolverStats()
        cegar = CegarSolver(backend=f"route:{fake}", stats=stats)
        result = cegar.solve(
            exec_model.match_formula, [exec_model.constraint]
        )
        assert result.status == SAT
        assert result.model.eval_term(
            input_var
        ) == native_result.model.eval_term(input_var)
        migrated = stats.route_tallies.get("refined-classical->session", 0)
        assert migrated == native_result.refinements  # mid-loop → session
        assert stats.route_tallies.get("classical->session") == 1
        assert "native-fallback" not in "".join(stats.route_tallies)
        # The session decided every query: one spawn for the stream.
        tally = stats.session_summary()[f"session:{fake}"]
        assert tally["queries"] == native_result.refinements + 1
        assert tally["spawns"] == 1
        cegar.solver.close()


class TestRefinedDedupKeys:
    def test_language_equal_capture_variants_do_not_coalesce(self):
        """(a+)b vs (a+?)b: identical canonical formulas, different
        concrete capture extents — the refined streams diverge, so the
        keys must too."""
        from repro.service import SolveJob

        greedy = SolveJob(job_id="g", pattern="(a+)b")
        lazy = SolveJob(job_id="l", pattern="(a+?)b")
        assert greedy.dedup_key() is not None
        assert greedy.dedup_key() != lazy.dedup_key()

    def test_identical_capture_jobs_still_coalesce(self):
        from repro.service import SolveJob

        a = SolveJob(job_id="a", pattern="(a+)b")
        b = SolveJob(job_id="b", pattern="(a+)b")
        assert a.dedup_key() == b.dedup_key()

    def test_fingerprint_none_without_real_captures(self):
        regexp = SymbolicRegExp("a+b", "")
        model = regexp.exec_model(StrVar("in!nocap"))
        assert (
            refinement_stream_fingerprint(
                model.no_match_formula, [model.negative_constraint]
            )
            is None
        )

    def test_fingerprint_alpha_renames_variables(self):
        def stream(var):
            regexp = SymbolicRegExp(r"(a+)b", "")
            model = regexp.exec_model(StrVar(var))
            return refinement_stream_fingerprint(
                model.match_formula, [model.constraint]
            )

        assert stream("in!one") == stream("in!two")


class TestQueryStoreGC:
    def _fill(self, store, n, base_time):
        from repro.solver.backends.cached import CachedResult

        for i in range(n):
            store.put(f"fp-{i}", CachedResult(UNSAT, None))
            entry = store._entry(f"fp-{i}")
            os.utime(entry, (base_time + i, base_time + i))

    def test_oldest_entries_evicted_past_cap(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"), max_entries=4)
        base = time.time() - 1000
        self._fill(store, 10, base)
        assert len(store) <= 4
        assert store.evictions >= 6
        # The newest entries survive; the oldest are gone.
        assert store.get("fp-9") is not None
        assert store.get("fp-0") is None

    def test_gc_hysteresis_amortizes_scans(self, tmp_path):
        from repro.solver.backends.cached import CachedResult

        store = QueryDiskStore(str(tmp_path / "q"), max_entries=16)
        base = time.time() - 1000
        self._fill(store, 17, base)  # crosses the cap once
        after_first_gc = store.evictions
        assert after_first_gc >= 1
        assert len(store) < 16  # low-water mark, not the cap itself
        store.put("fp-extra", CachedResult(UNSAT, None))
        # One put right after a GC must not rescan the directory.
        assert store.evictions == after_first_gc

    def test_cap_of_one_still_serves_hits(self, tmp_path):
        from repro.solver.backends.cached import CachedResult

        store = QueryDiskStore(str(tmp_path / "q"), max_entries=1)
        base = time.time() - 1000
        self._fill(store, 3, base)
        assert len(store) == 1
        assert store.get("fp-2") is not None  # the newest survives

    def test_unbounded_store_never_gcs(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        self._fill(store, 10, time.time() - 1000)
        assert len(store) == 10
        assert store.evictions == 0
        assert store.gc() == 0

    def test_evictions_surface_in_cache_counters(self, tmp_path):
        cache = QueryCache(
            store_path=str(tmp_path / "q"), store_max_entries=2
        )
        from repro.solver.backends.cached import CachedResult

        for i in range(5):
            cache.put(f"fp-{i}", CachedResult(UNSAT, None))
            time.sleep(0.01)
        counters = cache.counters()
        assert counters["disk_evictions"] >= 3
        assert len(cache.store) <= 2

    def test_attach_store_applies_cap_to_existing_handle(self, tmp_path):
        cache = QueryCache(store_path=str(tmp_path / "q"))
        assert cache.store.max_entries is None
        cache.attach_store(str(tmp_path / "q"), max_entries=7)
        assert cache.store.max_entries == 7

    def test_runner_threads_cap_to_worker_store(self, tmp_path):
        from repro.service import BatchRunner, RunnerConfig, SolveJob

        store_dir = str(tmp_path / "q")
        report = BatchRunner(
            RunnerConfig(
                workers=0, query_cache=store_dir, query_cache_max=1
            )
        ).run(
            [
                SolveJob(job_id="a", pattern="a+b"),
                SolveJob(job_id="b", pattern="[0-9]{2}"),
                SolveJob(job_id="c", pattern="x?y"),
            ]
        )
        assert all(r.status == "ok" for r in report.results)
        assert len(QueryDiskStore(store_dir)) <= 1

    def test_cli_flag_parses(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["batch", "--survey", "--query-cache", "/tmp/q",
             "--query-cache-max", "100"]
        )
        assert args.query_cache_max == 100
        args = build_parser().parse_args(
            ["solve", "a+", "--query-cache", "/tmp/q",
             "--query-cache-max", "5"]
        )
        assert args.query_cache_max == 5

    def test_cli_cap_without_store_is_an_error(self, capsys):
        from repro.__main__ import main

        assert main(["solve", "a+", "--query-cache-max", "5"]) == 2
        assert "requires --query-cache" in capsys.readouterr().err
        assert (
            main(["batch", "--survey", "-n", "5", "--query-cache-max",
                  "5"])
            == 2
        )


class TestHashedSurveyUniques:
    def test_payload_ships_hashed_bitmasks(self):
        from repro.service import SurveyJob

        result = SurveyJob(
            job_id="v",
            package_files=[["var a = /x(y)/; var b = /\\d+/g;"]],
        ).run()
        assert result.status == "ok"
        uniques = result.payload["uniques"]
        assert len(uniques) == 2
        for key, mask in uniques.items():
            assert isinstance(key, str) and len(key) == 24  # hex digest
            assert isinstance(mask, int)
        assert any(mask for mask in uniques.values())  # features set

    def test_merge_reproduces_direct_survey(self):
        from repro.corpus.generator import CorpusConfig, generate_corpus
        from repro.corpus.survey import survey_packages
        from repro.service import SurveyJob
        from repro.service.report import merge_survey

        corpus = generate_corpus(CorpusConfig(n_packages=30, seed=7))
        direct = survey_packages(corpus)
        shards = [
            SurveyJob(
                job_id=f"v{i}",
                package_files=[list(p.files) for p in corpus[i::3]],
            ).run()
            for i in range(3)
        ]
        merged = merge_survey(shards)
        assert merged.total_regexes == direct.total_regexes
        assert merged.unique_regexes == direct.unique_regexes
        assert merged.feature_totals == direct.feature_totals
        assert merged.feature_uniques == direct.feature_uniques

    def test_merge_accepts_legacy_feature_lists(self):
        from repro.service import SurveyJob
        from repro.service.report import merge_survey

        result = SurveyJob(
            job_id="v", package_files=[["var a = /x(y)/;"]]
        ).run()
        # A payload from an older worker: feature-name lists keyed by
        # literal text.
        result.payload["uniques"] = {"x(y)\x00": ["capture_groups"]}
        merged = merge_survey([result])
        assert merged.unique_regexes == 1
        assert merged.feature_uniques["capture_groups"] == 1

    def test_report_text_output_unchanged(self):
        from repro.corpus.survey import format_table4, format_table5
        from repro.service import SurveyJob
        from repro.service.report import merge_survey

        merged = merge_survey(
            [
                SurveyJob(
                    job_id="v",
                    package_files=[["var a = /x(y)/; var b = /\\d+/;"]],
                ).run()
            ]
        )
        table4 = format_table4(merged)
        table5 = format_table5(merged)
        assert "Packages" in table4
        assert "Total Regex" in table5
