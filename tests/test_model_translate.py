"""Tests for the capturing-language model (§4, Tables 2–3).

Ground truth throughout is the concrete ES6 matcher (via
:mod:`repro.model.capturing`): the model + CEGAR pipeline must produce
words the matcher accepts with exactly the matcher's capture values, and
non-membership models must produce words the matcher rejects.
"""

import pytest

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model import (
    CegarSolver,
    ModelConfig,
    MutableBackrefPolicy,
    SymbolicRegExp,
    find_matching_input,
    find_non_matching_input,
)
from repro.model.capturing import capturing_tuples, is_member
from repro.regex import RegExp
from repro.solver import SAT, Solver, UNSAT


def assert_generates_valid_match(source, flags=""):
    result = find_matching_input(source, flags)
    assert result is not None, f"no input found for /{source}/{flags}"
    word, captures = result
    concrete = RegExp(source, flags).exec(word)
    assert concrete is not None, f"/{source}/{flags}: {word!r} does not match"
    for index, value in captures.items():
        assert value == concrete[index], (
            f"/{source}/{flags} capture {index}: "
            f"model={value!r} concrete={concrete[index]!r}"
        )
    return word, captures


def assert_generates_non_match(source, flags=""):
    word = find_non_matching_input(source, flags)
    assert word is not None, f"no non-matching input for /{source}/{flags}"
    assert not RegExp(source, flags).test(word), (
        f"/{source}/{flags}: {word!r} unexpectedly matches"
    )
    return word


class TestRegularFragment:
    @pytest.mark.parametrize(
        "source",
        ["abc", "a|b", "a*", "a+b+", "[0-9]{3}", r"\w+\s\w+", "x(?:yz)*"],
    )
    def test_membership(self, source):
        assert_generates_valid_match(source)

    @pytest.mark.parametrize("source", ["abc", "a+", r"\d{2,4}"])
    def test_non_membership(self, source):
        assert_generates_non_match(source)


class TestCaptureGroups:
    def test_single_group(self):
        word, caps = assert_generates_valid_match(r"(a+)b")
        assert caps[1] is not None

    def test_nested_groups(self):
        assert_generates_valid_match(r"((a)(b))")

    def test_alternation_undefined_side(self):
        # Table 2: the non-matching side's captures are ⊥.
        word, caps = assert_generates_valid_match(r"(x)|(y)")
        assert (caps[1] is None) != (caps[2] is None)

    def test_quantified_group_last_iteration(self):
        assert_generates_valid_match(r"(?:(a)|b)+")

    def test_optional_group_undefined_vs_empty(self):
        # Force the ε outcome: the input "b" leaves (a) undefined.
        regexp = SymbolicRegExp(r"^(a)?b$")
        inp = StrVar("inp")
        model = regexp.exec_model(inp)
        problem = conj([model.match_formula, Eq(inp, StrConst("b"))])
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT
        assert result.model[model.captures[1]] is None


class TestMatchingPrecedence:
    """§3.4 — the raw model is precedence-blind; CEGAR repairs it."""

    def test_greedy_star_starves_optional(self):
        word, caps = assert_generates_valid_match(r"^a*(a)?$")
        # Whatever word was chosen, C1 must equal the concrete matcher's
        # answer, which for /^a*(a)?$/ is always ⊥ (a* eats everything).
        assert caps[1] is None

    def test_lazy_quantifier_model(self):
        assert_generates_valid_match(r"^a*?(a)?$")

    def test_greedy_with_suffix(self):
        assert_generates_valid_match(r"(a*)(a)?$")

    def test_raw_model_admits_spurious_tuple(self):
        # Without refinement the §3.4 spurious assignment is reachable:
        # pin w="aa", C1="a" — the raw model accepts, the oracle refutes.
        regexp = SymbolicRegExp(r"^a*(a)?$")
        inp = StrVar("inp")
        model = regexp.exec_model(inp)
        spurious = conj(
            [
                model.match_formula,
                Eq(inp, StrConst("aa")),
                Eq(model.captures[1], StrConst("a")),
            ]
        )
        raw = Solver().solve(spurious)
        assert raw.status == SAT  # the overapproximation (paper §3.4)
        refined = CegarSolver().solve(spurious, [model.constraint])
        assert refined.status != SAT  # CEGAR eliminates it


class TestBackreferences:
    def test_immutable_backref(self):
        word, caps = assert_generates_valid_match(r"(a|b)\1")
        assert word is not None

    def test_xml_tag_listing1(self):
        word, caps = assert_generates_valid_match(r"<(\w+)>([0-9]*)<\/\1>")
        assert caps[1] is not None

    def test_undefined_backref_matches_empty(self):
        assert_generates_valid_match(r"(?:a|(b))\1x")

    def test_empty_forward_reference(self):
        assert_generates_valid_match(r"\1(a)")

    def test_quantified_backref(self):
        word, caps = assert_generates_valid_match(r"^(a|b)\1+$")
        assert word[0] == word[1]

    def test_backref_non_membership(self):
        word = assert_generates_non_match(r"(a)\1")
        assert word is not None

    def test_mutable_policy_immutable_accepts_uniform(self):
        # Table 3 last row: under IMMUTABLE all iterations agree, so
        # "aaaaa" (= aa + aa + a… shape) is reachable for ((a|b)\2)-like
        # patterns while mixed iterations are not generated.
        word, caps = assert_generates_valid_match(r"^((a|b)\2)+\1\2$")
        assert set(word) in ({"a"}, {"b"})

    def test_exact_policy_also_validates(self):
        config = ModelConfig(policy=MutableBackrefPolicy.EXACT)
        result = find_matching_input(r"^((a|b)\2)+\1\2$", config=config)
        assert result is not None
        word, _ = result
        assert RegExp(r"^((a|b)\2)+\1\2$").test(word)


class TestAssertions:
    def test_anchors(self):
        word, _ = assert_generates_valid_match(r"^ab$")
        assert word == "ab"

    def test_anchor_only_start(self):
        word, _ = assert_generates_valid_match(r"^ab")
        assert word.startswith("ab")

    def test_multiline_anchor(self):
        assert_generates_valid_match(r"^b$", "m")

    def test_word_boundary(self):
        word, _ = assert_generates_valid_match(r"\bcat\b")
        assert RegExp(r"\bcat\b").test(word)

    def test_non_word_boundary(self):
        word, _ = assert_generates_valid_match(r"a\Bb")
        assert "ab" in word

    def test_positive_lookahead(self):
        assert_generates_valid_match(r"a(?=b)b")

    def test_negative_lookahead(self):
        assert_generates_valid_match(r"a(?!x)b")

    def test_lookahead_with_capture(self):
        word, caps = assert_generates_valid_match(r"(?=(a+))a")
        assert caps[1] is not None

    def test_lookahead_intersection_unsat(self):
        # (?=b)a is unsatisfiable: the next char cannot be both a and b.
        regexp = SymbolicRegExp(r"^(?=b)a$")
        inp = StrVar("inp")
        model = regexp.exec_model(inp)
        result = CegarSolver().solve(model.match_formula, [model.constraint])
        assert result.status != SAT


class TestFlags:
    def test_ignore_case(self):
        word, _ = assert_generates_valid_match("AbC", "i")

    def test_multiline(self):
        assert_generates_valid_match("^x", "m")


class TestAgainstEnumeratedLanguage:
    """Cross-validate model output against Definition 1 enumeration."""

    @pytest.mark.parametrize(
        "source",
        [r"(a|b)*c", r"(a)(b)?", r"a(bc)+", r"(?:a|(b))\1"],
    )
    def test_generated_tuple_is_in_language(self, source):
        word, caps = assert_generates_valid_match(f"^{source}$")
        expected = is_member(f"^{source}$", word)
        assert expected is not None
        assert tuple(caps[i] for i in sorted(caps)) == expected

    def test_language_slice_nonempty_iff_model_sat(self):
        for source in [r"(a)b", r"a{3}", r"(a)\1"]:
            slice_ = list(capturing_tuples(f"^{source}$", max_length=4))
            generated = find_matching_input(f"^{source}$")
            assert (generated is not None) == bool(slice_)


class TestWithExtraConstraints:
    """The DSE shape: Lc membership mixed with other string constraints."""

    def test_capture_pinned_to_constant(self):
        # §3.2: C1 = "timeout" after matching the Listing 1 regex.
        regexp = SymbolicRegExp(r"<(\w+)>([0-9]*)<\/\1>")
        inp = StrVar("arg")
        model = regexp.exec_model(inp)
        problem = conj(
            [
                model.match_formula,
                Eq(model.captures[1], StrConst("timeout")),
            ]
        )
        result = CegarSolver().solve(problem, [model.constraint])
        assert result.status == SAT
        word = result.model.eval_term(inp)
        concrete = RegExp(r"<(\w+)>([0-9]*)<\/\1>").exec(word)
        assert concrete is not None and concrete[1] == "timeout"

    def test_two_regexes_same_input(self):
        r1 = SymbolicRegExp(r"(a+)b")
        r2 = SymbolicRegExp(r"a(b+)")
        inp = StrVar("s")
        m1 = r1.exec_model(inp)
        m2 = r2.exec_model(inp)
        problem = conj([m1.match_formula, m2.match_formula])
        result = CegarSolver().solve(
            problem, [m1.constraint, m2.constraint]
        )
        assert result.status == SAT
        word = result.model.eval_term(inp)
        assert RegExp(r"(a+)b").test(word) and RegExp(r"a(b+)").test(word)

    def test_membership_and_non_membership(self):
        r1 = SymbolicRegExp(r"[0-9]+")
        r2 = SymbolicRegExp(r"^[0-9]+$")
        inp = StrVar("s")
        m1 = r1.exec_model(inp)
        m2 = r2.exec_model(inp)
        problem = conj([m1.match_formula, m2.no_match_formula])
        result = CegarSolver().solve(
            problem, [m1.constraint, m2.negative_constraint]
        )
        assert result.status == SAT
        word = result.model.eval_term(inp)
        assert RegExp(r"[0-9]+").test(word)
        assert not RegExp(r"^[0-9]+$").test(word)
