"""Tests for the incremental SMT-LIB session backend.

No real z3/cvc5 is assumed: the interactive dialogue is exercised with
fake solver executables (small Python scripts speaking just enough
SMT-LIB to answer ``check-sat``/``get-value``/``echo``), including
crashing and hanging ones.  The acceptance property is the equivalence
suite at the bottom: on the printer round-trip corpus, the session
backend must return exactly the verdicts/models of the
subprocess-per-query ``smtlib:`` backend — while spawning one process
for the whole corpus instead of one per query.
"""

import stat
import time
import textwrap

import pytest

from repro.automata.build import erase_captures
from repro.constraints import Eq, InRe, StrConst, StrVar, conj
from repro.constraints.printer import (
    smtlib_prelude,
    to_smtlib_incremental,
)
from repro.regex import parse_regex
from repro.solver import SAT, Model, SolverStats, UNKNOWN, UNSAT
from repro.solver.backends import SessionBackend, SmtLibBackend, make_backend


def membership(pattern: str, var_name: str = "x"):
    node = erase_captures(parse_regex(pattern, "").body)
    return InRe(StrVar(var_name), node)


X = StrVar("x")

#: A fake interactive solver: answers every (check-sat) with VERDICT,
#: every (get-value ...) with MODEL, echoes markers, and appends every
#: line it receives to LOG (for dialogue assertions).
_FAKE = textwrap.dedent(
    '''\
    #!/usr/bin/env python3
    import re, sys
    VERDICT = {verdict!r}
    MODEL = {model!r}
    LOG = {log!r}
    for line in sys.stdin:
        if LOG:
            with open(LOG, "a") as f:
                f.write(line)
        line = line.strip()
        if line == "(check-sat)":
            print(VERDICT, flush=True)
        elif line.startswith("(get-value"):
            print(MODEL, flush=True)
        else:
            m = re.match(r'\\(echo "(.*)"\\)', line)
            if m:
                print(m.group(1), flush=True)
    '''
)


def fake_session_solver(
    tmp_path, verdict="sat", model="()", log=None, name="fakesess", body=None
):
    path = tmp_path / name
    path.write_text(
        body
        if body is not None
        else _FAKE.format(verdict=verdict, model=model, log=log or "")
    )
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class TestIncrementalRendering:
    def test_delta_declares_each_symbol_once(self):
        declared = set()
        first = to_smtlib_incremental(
            membership("a+"), declared, guarded=True, get_values=True
        )
        assert "(declare-const x String)" in first
        assert "(declare-const x.def Bool)" in first
        assert first.index("(declare-const x String)") < first.index(
            "(push 1)"
        )  # declarations persist outside the scope
        assert first.strip().endswith("(pop 1)")
        second = to_smtlib_incremental(
            membership("b+"), declared, guarded=True, get_values=True
        )
        assert "declare-const" not in second  # already declared
        assert "(push 1)" in second and "(check-sat)" in second

    def test_new_symbols_still_declared_later(self):
        declared = set()
        to_smtlib_incremental(membership("a"), declared)
        third = to_smtlib_incremental(
            membership("a", var_name="y"), declared
        )
        assert "(declare-const y String)" in third

    def test_unprintable_raises_before_mutating_declared(self):
        declared = set()
        with pytest.raises(TypeError):
            to_smtlib_incremental(
                InRe(StrVar("z"), parse_regex("(?=a)a", "").body), declared
            )
        assert not declared

    def test_prelude_matches_one_shot_header(self):
        assert smtlib_prelude(get_values=True).splitlines() == [
            "(set-option :produce-models true)",
            "(set-logic QF_S)",
        ]


class TestSessionLifecycle:
    def test_one_spawn_many_queries(self, tmp_path):
        stats = SolverStats()
        cmd = fake_session_solver(
            tmp_path, "sat", '((x "aab") (x.def true))'
        )
        backend = SessionBackend(cmd, stats=stats, timeout=5.0)
        formula = membership("a+b")
        for _ in range(8):
            result = backend.solve(formula)
            assert result.status == SAT
            assert result.model[X] == "aab"
        assert backend.spawns == 1
        tally = stats.session_summary()[backend.name]
        assert tally["queries"] == 8
        assert tally["spawns"] == 1
        assert tally["queries_per_spawn"] == 8.0
        backend.close()
        assert stats.session_summary()[backend.name]["seconds"] > 0

    def test_dialogue_is_incremental(self, tmp_path):
        log = str(tmp_path / "dialogue.log")
        cmd = fake_session_solver(tmp_path, "unsat", log=log)
        backend = SessionBackend(cmd, timeout=5.0)
        formula = membership("a+b")
        assert backend.solve(formula).status == UNSAT
        assert backend.solve(formula).status == UNSAT
        # The trailing (pop 1) is written but close() may kill the fake
        # before it drains it — wait until the log settles.
        deadline = time.monotonic() + 5.0
        while (
            open(log).read().count("(pop 1)") < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        backend.close()
        dialogue = open(log).read()
        assert dialogue.count("(set-logic QF_S)") == 1  # shared prelude
        assert dialogue.count("(declare-const x String)") == 1  # delta only
        assert dialogue.count("(push 1)") == 2
        assert dialogue.count("(pop 1)") == 2

    def test_reset_cadence(self, tmp_path):
        log = str(tmp_path / "dialogue.log")
        stats = SolverStats()
        cmd = fake_session_solver(tmp_path, "unsat", log=log)
        backend = SessionBackend(
            cmd, stats=stats, timeout=5.0, reset_every=2
        )
        formula = membership("a+")
        for _ in range(5):
            backend.solve(formula)
        backend.close()
        dialogue = open(log).read()
        assert backend.resets == 2  # after queries 2 and 4
        assert dialogue.count("(reset)") == 2
        # the prelude and the declarations come back after every reset
        assert dialogue.count("(set-logic QF_S)") == 3
        assert dialogue.count("(declare-const x String)") == 3
        assert stats.session_summary()[backend.name]["resets"] == 2

    def test_missing_binary_degrades_to_unknown(self):
        backend = SessionBackend("no-such-session-solver")
        assert not backend.available
        assert backend.solve(membership("a")).status == UNKNOWN
        assert "not installed" in backend.last_error
        assert backend.spawns == 0

    def test_unprintable_formula_keeps_session_alive(self, tmp_path):
        cmd = fake_session_solver(tmp_path, "unsat")
        backend = SessionBackend(cmd, timeout=5.0)
        assert backend.solve(membership("a")).status == UNSAT
        lookahead = InRe(StrVar("z"), parse_regex("(?=a)a", "").body)
        assert backend.solve(lookahead).status == UNKNOWN
        assert "unprintable" in backend.last_error
        assert backend.solve(membership("b")).status == UNSAT
        assert backend.spawns == 1  # nothing was sent, nothing crashed
        backend.close()

    def test_no_get_value_after_non_sat_verdict(self, tmp_path):
        # cvc5 aborts the whole process on a model query in unsat
        # state; the session must ask for values only after `sat`, or
        # every unsat verdict would be discarded with a crash+respawn.
        body = textwrap.dedent(
            '''\
            #!/usr/bin/env python3
            import re, sys
            last = None
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    last = "unsat"
                    print("unsat", flush=True)
                elif line.startswith("(get-value"):
                    if last != "sat":
                        sys.exit(1)  # cvc5-style abort-on-error
                    print("()", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        cmd = fake_session_solver(tmp_path, body=body, name="abortsmodel")
        backend = SessionBackend(cmd, timeout=5.0)
        formula = membership("a+")
        assert backend.solve(formula).status == UNSAT
        assert backend.solve(formula).status == UNSAT
        assert backend.spawns == 1 and backend.restarts == 0
        backend.close()

    def test_quoted_echo_marker_cvc5_style(self, tmp_path):
        # z3 echoes the bare string; cvc5/cvc4 echo the SMT-LIB string
        # *literal*, quotes included.  Both must synchronize.
        body = textwrap.dedent(
            '''\
            #!/usr/bin/env python3
            import re, sys
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    print("unsat", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print('"' + m.group(1) + '"', flush=True)
            '''
        )
        cmd = fake_session_solver(tmp_path, body=body, name="quotedecho")
        backend = SessionBackend(cmd, timeout=5.0)
        assert backend.solve(membership("a+")).status == UNSAT
        assert backend.restarts == 0
        backend.close()

    def test_bogus_model_degrades_to_unknown(self, tmp_path):
        cmd = fake_session_solver(
            tmp_path, "sat", '((x "zzz") (x.def true))'
        )
        backend = SessionBackend(cmd, timeout=5.0)
        assert backend.solve(membership("a+b")).status == UNKNOWN
        assert "re-validation" in backend.last_error
        backend.close()


class TestCrashRecovery:
    def test_crash_restarts_once_and_answers_unknown(self, tmp_path):
        # Crashes on the first check-sat of every *process* unless a
        # state file says this is a respawn; so: query 1 crashes
        # (restart, UNKNOWN), query 2 runs on the fresh process.
        state = tmp_path / "crashed-once"
        body = textwrap.dedent(
            f'''\
            #!/usr/bin/env python3
            import os, re, sys
            state = {str(state)!r}
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    if not os.path.exists(state):
                        open(state, "w").close()
                        sys.exit(1)
                    print("unsat", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        stats = SolverStats()
        cmd = fake_session_solver(tmp_path, body=body, name="crashonce")
        backend = SessionBackend(cmd, stats=stats, timeout=5.0)
        formula = membership("a+")
        assert backend.solve(formula).status == UNKNOWN  # crashed mid-query
        assert backend.restarts == 1
        assert backend.solve(formula).status == UNSAT  # fresh process works
        assert backend.spawns == 2
        tally = stats.session_summary()[backend.name]
        assert tally["restarts"] == 1 and tally["spawns"] == 2
        backend.close()

    def test_hung_solver_times_out_to_unknown(self, tmp_path):
        body = textwrap.dedent(
            """\
            #!/usr/bin/env python3
            import sys, time
            for line in sys.stdin:
                if line.strip() == "(check-sat)":
                    time.sleep(60)
            """
        )
        cmd = fake_session_solver(tmp_path, body=body, name="hang")
        backend = SessionBackend(cmd, timeout=0.2)
        result = backend.solve(membership("a"))
        assert result.status == UNKNOWN
        assert "timed out" in backend.last_error
        assert backend.restarts == 1
        backend.close()

    def test_instant_exit_degrades_per_query(self, tmp_path):
        body = "#!/bin/sh\nexit 1\n"
        cmd = fake_session_solver(tmp_path, body=body, name="dieshard")
        backend = SessionBackend(cmd, timeout=1.0)
        for _ in range(2):
            assert backend.solve(membership("a")).status == UNKNOWN
        backend.close()


class TestSpecAndRegistry:
    def test_session_spec_resolves(self):
        backend = make_backend("session:z3?timeout=3&reset_every=64")
        assert backend.name == "session:z3"
        assert backend.timeout == 3
        assert backend.reset_every == 64

    def test_default_timeout_threads_down(self):
        assert make_backend("session:z3", timeout=7.5).timeout == 7.5

    def test_unknown_option_rejected(self):
        from repro.solver.backends import BackendError

        with pytest.raises(BackendError, match="option"):
            make_backend("session:z3?frobnicate=1")

    def test_cached_session_composes(self):
        backend = make_backend("cached:session:z3")
        assert backend.name == "cached:session:z3"


class TestEquivalenceWithOneShotSmtlib:
    """Satellite: incremental-session verdicts/models match the
    subprocess-per-query ``smtlib:`` backend on the printer round-trip
    corpus — with one spawn amortized over the whole corpus."""

    def _corpus(self):
        from repro.corpus.data import CATALOG
        from repro.model.api import SymbolicRegExp

        formulas = []
        for entry in CATALOG:
            if "backreference" in entry.tags:
                continue
            regexp = SymbolicRegExp(entry.pattern, entry.flags)
            formulas.append(
                regexp.exec_model(StrVar(f"in!{len(formulas)}")).match_formula
            )
            if len(formulas) == 8:
                break
        return formulas

    def _canned(self, formulas):
        """Native-solve the corpus; render each answer as solver stdout."""
        from repro.constraints.printer import _string_literal, _variables
        from repro.solver.core import Solver

        responses = []
        for formula in formulas:
            result = Solver(timeout=5.0).solve(formula)
            if result.status != SAT:
                responses.append((result.status, "()"))
                continue
            pairs = []
            for var in sorted(_variables(formula), key=lambda v: v.name):
                value = result.model[var]
                defined = "false" if value is None else "true"
                literal = _string_literal(value or "")
                name = (
                    var.name
                    if all(c.isalnum() or c in "_.$" for c in var.name)
                    else f"|{var.name}|"
                )
                defname = (
                    f"{name[:-1]}.def|" if name.endswith("|")
                    else f"{name}.def"
                )
                pairs.append(f"({name} {literal})")
                pairs.append(f"({defname} {defined})")
            responses.append((SAT, "(" + " ".join(pairs) + ")"))
        return responses

    def _scripted_solver(self, tmp_path, responses, name, per_process):
        """A fake solver replaying canned (verdict, model) pairs.

        ``per_process=False`` advances one shared counter file per
        *check-sat* (the session case: one process, many queries);
        ``per_process=True`` advances it per *invocation* (the one-shot
        case: each spawn answers the next query).
        """
        counter = tmp_path / f"{name}.counter"
        counter.write_text("0")
        body = textwrap.dedent(
            f'''\
            #!/usr/bin/env python3
            import re, sys
            RESPONSES = {responses!r}
            COUNTER = {str(counter)!r}
            PER_PROCESS = {per_process!r}

            def take():
                with open(COUNTER) as f:
                    i = int(f.read().strip() or "0")
                with open(COUNTER, "w") as f:
                    f.write(str(i + 1))
                return RESPONSES[i % len(RESPONSES)]

            if PER_PROCESS:
                verdict, model = take()
                print(verdict, flush=True)
                print(model, flush=True)
                sys.exit(0)
            current = [None]
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    current[0] = take()
                    print(current[0][0], flush=True)
                elif line.startswith("(get-value"):
                    print(current[0][1] if current[0] else "()", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        path = tmp_path / name
        path.write_text(body)
        path.chmod(path.stat().st_mode | stat.S_IXUSR)
        return str(path)

    def test_session_matches_one_shot_on_the_corpus(self, tmp_path):
        formulas = self._corpus()
        responses = self._canned(formulas)
        session_cmd = self._scripted_solver(
            tmp_path, responses, "replay-session", per_process=False
        )
        oneshot_cmd = self._scripted_solver(
            tmp_path, responses, "replay-oneshot", per_process=True
        )
        session = SessionBackend(session_cmd, timeout=10.0)
        oneshot = SmtLibBackend(oneshot_cmd, timeout=10.0)
        for formula in formulas:
            incremental = session.solve(formula)
            spawned = oneshot.solve(formula)
            assert incremental.status == spawned.status, (
                session.last_error,
                oneshot.last_error,
            )
            if incremental.model is None:
                assert spawned.model is None
            else:
                assert (
                    incremental.model.assignment == spawned.model.assignment
                )
        assert session.spawns == 1  # the whole corpus on one process
        assert session.queries == len(formulas)
        session.close()
