"""Round-trip tests: generated models render to well-formed SMT-LIB.

Checks the printer against the *actual* formulas the pipeline produces
(not just hand-built ones): every exec model of the catalog's regular
entries must print to balanced, declared SMT-LIB text.
"""

import pytest

from repro.constraints import StrVar
from repro.constraints.printer import to_smtlib
from repro.corpus.data import CATALOG
from repro.model.api import SymbolicRegExp


def _balanced(text: str) -> bool:
    depth = 0
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            if ch == '"':
                if i + 1 < len(text) and text[i + 1] == '"':
                    i += 1  # escaped quote
                else:
                    in_string = False
        elif ch == '"':
            in_string = True
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
        i += 1
    return depth == 0 and not in_string


# Lookahead-free, backref-free entries print fully classically; the rest
# still must print (their classical InRe leaves are classical nodes).
PRINTABLE = [e for e in CATALOG if "backreference" not in e.tags][:12]


@pytest.mark.parametrize("entry", PRINTABLE, ids=lambda e: e.display)
def test_exec_model_prints(entry):
    regexp = SymbolicRegExp(entry.pattern, entry.flags)
    model = regexp.exec_model(StrVar("input"))
    script = to_smtlib(model.match_formula)
    assert script.startswith("(set-logic QF_S)")
    assert "(check-sat)" in script
    assert _balanced(script), entry.display


def test_balanced_helper():
    assert _balanced('(a (b "c)d") e)')
    assert not _balanced("(a")
    assert not _balanced(")")
    assert _balanced('(= x "say ""hi""")')
