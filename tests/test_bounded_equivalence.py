"""Bounded-exhaustive equivalence: model+CEGAR vs the concrete matcher.

For each regex in the bank and *every* word over a small alphabet up to
a length bound, pinning the input in the model must be SAT exactly when
the concrete matcher accepts — and the capture values in the model must
be the matcher's.  This is the sharpest soundness check in the suite:
no sampling, no luck, every word in the slice.
"""

import pytest

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.model.capturing import words_over
from repro.regex import RegExp
from repro.solver import SAT, Solver, UNKNOWN, UNSAT

#: (source, flags, alphabet, max word length)
BANK = [
    (r"^ab?$", "", "ab", 3),
    (r"^(a|b)b$", "", "ab", 3),
    (r"^a*(a)?$", "", "a", 3),
    (r"^(a*)(b*)$", "", "ab", 3),
    (r"^(?:a|(b))\1$", "", "ab", 3),
    (r"^(a)\1$", "", "ab", 4),
    (r"a(?=b)", "", "ab", 2),
    (r"^a(?!b)", "", "ab", 2),
    (r"\ba\b", "", "a b", 3),
    (r"^[ab]{2}$", "", "ab", 3),
    (r"b", "i", "bB", 2),
]


@pytest.mark.parametrize("source,flags,alphabet,max_len", BANK)
def test_bounded_equivalence(source, flags, alphabet, max_len):
    regexp = SymbolicRegExp(source, flags)
    solver = CegarSolver(solver=Solver(timeout=10.0))
    for word in words_over(alphabet, max_len):
        concrete = RegExp(source, flags).exec(word)
        inp = StrVar("w")
        model = regexp.exec_model(inp)
        pinned = conj([model.match_formula, Eq(inp, StrConst(word))])
        result = solver.solve(pinned, [model.constraint])

        if concrete is None:
            assert result.status in (UNSAT, UNKNOWN), (
                f"/{source}/{flags} should reject {word!r} but model "
                f"answered {result.status}"
            )
            continue
        assert result.status == SAT, (
            f"/{source}/{flags} should accept {word!r} but model "
            f"answered {result.status}"
        )
        for index, var in sorted(model.captures.items()):
            assert result.model[var] == concrete[index], (
                f"/{source}/{flags} on {word!r}: capture {index} "
                f"model={result.model[var]!r} concrete={concrete[index]!r}"
            )


@pytest.mark.parametrize(
    "source,flags,alphabet,max_len",
    [
        (r"^ab?$", "", "ab", 3),
        (r"^(a)\1$", "", "ab", 3),
        (r"^a*(a)?$", "", "a", 3),
    ],
)
def test_bounded_non_membership(source, flags, alphabet, max_len):
    """Dual check: the negative model pinned to a word is SAT exactly
    when the matcher rejects."""
    regexp = SymbolicRegExp(source, flags)
    solver = CegarSolver(solver=Solver(timeout=10.0))
    for word in words_over(alphabet, max_len):
        matches = RegExp(source, flags).test(word)
        inp = StrVar("w")
        model = regexp.exec_model(inp)
        pinned = conj([model.no_match_formula, Eq(inp, StrConst(word))])
        result = solver.solve(pinned, [model.negative_constraint])
        if matches:
            assert result.status in (UNSAT, UNKNOWN), (
                f"/{source}/ matches {word!r}; non-membership must not "
                f"be SAT"
            )
        else:
            assert result.status == SAT, (
                f"/{source}/ rejects {word!r}; non-membership should be "
                f"SAT but was {result.status}"
            )
