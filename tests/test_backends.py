"""Tests for the pluggable solver-backend API (registry + portfolio).

Covers the spec registry (`make_backend`), the native wrapper, the
cached decorator, per-backend tallies, and — most importantly — the
portfolio backend's soundness invariants: UNKNOWN from one member never
masks a definitive answer from another, and disagreeing definitive
answers raise loudly instead of silently picking a winner.
"""

import time

import pytest

from repro.automata.build import erase_captures
from repro.constraints import InRe, Not, StrVar, conj
from repro.regex import parse_regex
from repro.solver import SAT, Model, SolverResult, SolverStats, UNKNOWN, UNSAT
from repro.solver.backends import (
    BackendDisagreement,
    BackendError,
    CachedBackend,
    NativeBackend,
    PortfolioBackend,
    SmtLibBackend,
    make_backend,
    register_backend,
    registered_backends,
)


def membership(pattern: str, var_name: str = "x"):
    node = erase_captures(parse_regex(pattern, "").body)
    return InRe(StrVar(var_name), node)


X = StrVar("x")


class _Stub:
    """Scriptable backend: fixed status after an optional delay."""

    def __init__(self, status, delay=0.0, name="stub", model=None):
        self.status = status
        self.delay = delay
        self.name = name
        self.model = model
        self.calls = 0

    def solve(self, formula):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return SolverResult(self.status, self.model)


class _Boom:
    name = "boom"

    def solve(self, formula):
        raise RuntimeError("member crashed")


class TestRegistry:
    def test_resolves_all_required_spec_forms(self):
        assert make_backend("native").name == "native"
        assert make_backend("smtlib:z3").name == "smtlib:z3"
        assert (
            make_backend("portfolio:native+smtlib").name
            == "portfolio:native+smtlib:z3"
        )
        assert make_backend("cached:native").name == "cached:native"

    def test_none_and_empty_mean_native(self):
        assert make_backend(None).name == "native"
        assert make_backend("").name == "native"

    def test_existing_backend_object_passes_through(self):
        backend = NativeBackend()
        assert make_backend(backend) is backend

    def test_prebuilt_backend_object_still_gets_the_stats_sink(self):
        stats = SolverStats()
        backend = make_backend(NativeBackend(), stats=stats)
        backend.solve(membership("a"))
        assert stats.backend_tallies["native"].queries == 1

    def test_options_and_default_timeout(self):
        assert make_backend("native?timeout=2").timeout == 2
        assert make_backend("native", timeout=7.5).timeout == 7.5
        # An explicit spec option beats the threaded default.
        assert make_backend("native?timeout=2", timeout=9.0).timeout == 2

    def test_unknown_scheme_and_bad_options_raise(self):
        with pytest.raises(BackendError, match="unknown solver backend"):
            make_backend("bogus")
        with pytest.raises(BackendError, match="option"):
            make_backend("native?frobnicate=1")
        with pytest.raises(BackendError, match="key=value"):
            make_backend("native?timeout")

    def test_non_numeric_option_values_fail_at_spec_time(self):
        with pytest.raises(BackendError, match="expects a number"):
            make_backend("native?timeout=abc")
        with pytest.raises(BackendError, match="expects a number"):
            make_backend("smtlib:z3?timeout=true")
        with pytest.raises(BackendError, match="inner backend"):
            make_backend("cached:")
        with pytest.raises(BackendError, match="members"):
            make_backend("portfolio:")
        with pytest.raises(BackendError):
            make_backend(object())

    def test_nested_specs_compose(self):
        backend = make_backend("cached:portfolio:native+smtlib:cvc5")
        assert backend.name == "cached:portfolio:native+smtlib:cvc5"
        member_timeouts = [
            m.timeout
            for m in make_backend(
                "portfolio:native?timeout=1+smtlib:z3?timeout=3"
            ).members
        ]
        assert member_timeouts == [1, 3]

    def test_legacy_factory_signature_still_resolves(self):
        # Factories registered against the pre-query-cache contract
        # (no query_cache kwarg) must keep working for ordinary calls.
        marker = NativeBackend()

        def legacy(rest, *, timeout=None, stats=None):
            return marker

        register_backend("legacy-scheme", legacy)
        try:
            assert make_backend("legacy-scheme") is marker
            # Even with a query-cache dir in play: the legacy factory
            # is simply not offered the kwarg, never crashed by it.
            assert (
                make_backend("legacy-scheme", query_cache="/tmp/qc")
                is marker
            )
        finally:
            from repro.solver.backends import registry

            registry._REGISTRY.pop("legacy-scheme")

    def test_register_backend_extends_the_grammar(self):
        marker = NativeBackend()
        register_backend("always-native", lambda rest, **kw: marker)
        try:
            assert "always-native" in registered_backends()
            assert make_backend("always-native") is marker
        finally:
            # keep the registry clean for other tests
            from repro.solver.backends import registry

            registry._REGISTRY.pop("always-native")


class TestNativeBackend:
    def test_same_verdicts_as_raw_solver(self):
        sat_formula = membership("a+b")
        unsat_formula = conj(
            [membership("a+"), Not(membership("a+"))]
        )
        backend = make_backend("native")
        assert backend.solve(sat_formula).status == SAT
        assert backend.solve(sat_formula).model is not None
        assert backend.solve(unsat_formula).status == UNSAT

    def test_tallies_record_outcome_and_latency(self):
        stats = SolverStats()
        backend = make_backend("native", stats=stats)
        backend.solve(membership("ab?c"))
        backend.solve(conj([membership("ab"), Not(membership("ab"))]))
        tally = stats.backend_tallies["native"]
        assert tally.queries == 2
        assert tally.sat == 1 and tally.unsat == 1
        assert tally.definitive_rate == 1.0
        assert tally.seconds > 0

    def test_backend_tallies_are_thread_safe(self):
        import threading

        stats = SolverStats()
        crashes = []

        def hammer(name):
            try:
                for _ in range(500):
                    stats.record_backend(name, "sat", 0.0)
                    stats.backend_summary()
            except Exception as exc:  # pragma: no cover - failure path
                crashes.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(f"b{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not crashes
        assert all(
            t.queries == 500 for t in stats.backend_tallies.values()
        )

    def test_bind_stats_attaches_once(self):
        backend = make_backend("native")
        first, second = SolverStats(), SolverStats()
        backend.bind_stats(first)
        backend.bind_stats(second)  # must not overwrite
        backend.solve(membership("a"))
        assert first.backend_tallies["native"].queries == 1
        assert not second.backend_tallies


class TestCachedBackend:
    def test_decorates_any_inner_backend(self):
        inner = _Stub(SAT, name="inner", model=Model({X: "a"}))
        backend = CachedBackend(inner)
        formula = membership("a+")
        r1 = backend.solve(formula)
        r2 = backend.solve(formula)
        assert r1.status == r2.status == SAT
        assert inner.calls == 1  # second answer came from the cache
        assert backend.name == "cached:inner"

    def test_unknown_is_never_cached(self):
        inner = _Stub(UNKNOWN, name="inner")
        backend = CachedBackend(inner)
        formula = membership("a+")
        backend.solve(formula)
        backend.solve(formula)
        assert inner.calls == 2

    def test_tallies_under_cached_name(self):
        stats = SolverStats()
        backend = make_backend("cached:native", stats=stats)
        formula = membership("xy*z")
        backend.solve(formula)
        backend.solve(formula)
        assert stats.backend_tallies["cached:native"].queries == 2
        assert stats.backend_tallies["native"].queries == 1  # one real solve

    def test_registry_built_cache_reports_hit_miss_events(self):
        stats = SolverStats()
        backend = make_backend("cached:native", stats=stats)
        formula = membership("ab+")
        backend.solve(formula)
        backend.solve(formula)
        summary = stats.cache_summary()
        assert summary == {
            "hits": 1, "misses": 1, "lookups": 2, "hit_rate": 0.5,
        }

    def test_cegar_with_cached_backend_spec_sees_cache_events(self):
        from repro.model.cegar import CegarSolver

        stats = SolverStats()
        cegar = CegarSolver(backend="cached:native", stats=stats)
        formula = membership("a+b")
        cegar.solve(formula)
        cegar.solve(formula)
        assert stats.cache_summary()["hits"] >= 1

    def test_engine_does_not_double_count_cache_events(self):
        from repro.dse.engine import DseEngine, EngineConfig

        program = (
            'var s = symbol("s", "");\n'
            'if (/^a+$/.test(s)) { 1; } else { 2; }\n'
            'if (/^a+$/.test(s)) { 3; } else { 4; }\n'
        )
        result = DseEngine(
            program,
            EngineConfig(max_tests=6, time_budget=5.0),
            backend="cached:native",
        ).run()
        summary = result.stats.cache_summary()
        backend_queries = result.stats.backend_tallies[
            "cached:native"
        ].queries
        assert summary["lookups"] == backend_queries


class TestPortfolioInvariants:
    def test_unknown_never_masks_definitive_sat(self):
        backend = PortfolioBackend(
            [_Stub(UNKNOWN, name="u"), _Stub(SAT, delay=0.05, name="s",
                                             model=Model({X: "ab"}))]
        )
        result = backend.solve(membership("a+b"))
        assert result.status == SAT

    def test_unknown_never_masks_definitive_unsat(self):
        backend = PortfolioBackend(
            [_Stub(UNKNOWN, name="u"), _Stub(UNSAT, delay=0.05, name="n")]
        )
        assert backend.solve(membership("a")).status == UNSAT

    def test_all_unknown_is_unknown(self):
        backend = PortfolioBackend(
            [_Stub(UNKNOWN, name="u1"), _Stub(UNKNOWN, name="u2")]
        )
        assert backend.solve(membership("a")).status == UNKNOWN

    def test_first_definitive_wins_without_waiting_for_stragglers(self):
        slow = _Stub(UNKNOWN, delay=5.0, name="slow")
        fast = _Stub(SAT, name="fast", model=Model({X: "a"}))
        backend = PortfolioBackend([slow, fast], agreement_grace=0.0)
        started = time.monotonic()
        result = backend.solve(membership("a"))
        assert result.status == SAT
        assert time.monotonic() - started < 2.0

    def test_disagreeing_definitive_answers_raise_loudly(self):
        backend = PortfolioBackend(
            [
                _Stub(SAT, name="liar", model=Model({X: "a"})),
                _Stub(UNSAT, name="truther"),
            ],
            agreement_grace=2.0,
        )
        with pytest.raises(BackendDisagreement, match="disagree"):
            backend.solve(membership("a"))

    def test_crashing_member_degrades_to_unknown(self):
        backend = PortfolioBackend([_Boom(), _Stub(UNKNOWN, name="u")])
        assert backend.solve(membership("a")).status == UNKNOWN

    def test_crashing_member_does_not_mask_definitive(self):
        backend = PortfolioBackend(
            [_Boom(), _Stub(UNSAT, delay=0.02, name="n")]
        )
        assert backend.solve(membership("a")).status == UNSAT

    def test_portfolio_timeout_returns_unknown(self):
        backend = PortfolioBackend(
            [_Stub(SAT, delay=5.0, name="slow")], timeout=0.1
        )
        assert backend.solve(membership("a")).status == UNKNOWN

    def test_tally_recorded_under_portfolio_name(self):
        stats = SolverStats()
        backend = PortfolioBackend(
            [_Stub(SAT, name="s", model=Model({X: "a"}))], stats=stats
        )
        backend.solve(membership("a"))
        assert stats.backend_tallies[backend.name].sat == 1

    def test_needs_members(self):
        with pytest.raises(BackendError):
            PortfolioBackend([])

    def test_straggler_never_reenters_a_member_concurrently(self):
        class _Reentrancy:
            """UNKNOWN after a long sleep; counts concurrent entries."""

            name = "slowpoke"

            def __init__(self):
                self.active = 0
                self.max_active = 0
                self.calls = 0

            def solve(self, formula):
                self.calls += 1
                self.active += 1
                self.max_active = max(self.max_active, self.active)
                time.sleep(0.3)
                self.active -= 1
                return SolverResult(UNKNOWN)

        slow = _Reentrancy()
        fast = _Stub(SAT, name="fast", model=Model({X: "a"}))
        backend = PortfolioBackend([slow, fast], agreement_grace=0.0)
        # Each query returns via the fast member, abandoning a slow
        # straggler; the slow member must be skipped while busy, never
        # entered twice at once.
        for _ in range(4):
            assert backend.solve(membership("a")).status == SAT
        time.sleep(0.4)  # let the last straggler drain
        assert slow.max_active == 1
        assert fast.calls == 4
        assert slow.calls < 4  # busy rounds were skipped

    def test_worker_pool_is_reused_across_queries(self):
        backend = PortfolioBackend(
            [_Stub(SAT, name="s", model=Model({X: "a"}))]
        )
        backend.solve(membership("a"))
        pool = backend._pool
        backend.solve(membership("a"))
        assert backend._pool is pool  # no executor-per-solve churn
        backend.close()
        assert backend._pool is None


class TestEndToEndEquivalence:
    """Acceptance: identical SAT/UNSAT verdicts regardless of backend."""

    SPECS = (
        "native",
        "cached:native",
        "portfolio:native+smtlib",
        "cached:portfolio:native+smtlib",
    )

    def test_find_matching_input_agrees_across_backends(self):
        from repro.model.api import find_matching_input

        for spec in self.SPECS:
            word, captures = find_matching_input(
                r"^v(\d+)\.(\d+)$", backend=spec
            )
            assert word == f"v{captures[1]}.{captures[2]}"

    def test_unsat_agrees_across_backends(self):
        from repro.model.cegar import CegarSolver

        formula = conj([membership("a+"), Not(membership("a+"))])
        for spec in self.SPECS:
            assert CegarSolver(backend=spec).solve(formula).status == UNSAT

    def test_engine_coverage_identical_across_backends(self):
        from repro.dse.engine import DseEngine, EngineConfig

        program = (
            'var s = symbol("s", "");\n'
            'var m = /^(a+)=(b+)$/.exec(s);\n'
            'if (m) { if (m[1] === "aa") { 1; } else { 2; } } else { 3; }\n'
        )
        baseline = None
        for spec in self.SPECS:
            result = DseEngine(
                program,
                EngineConfig(max_tests=6, time_budget=10.0),
                backend=spec,
            ).run()
            covered = frozenset(result.covered)
            if baseline is None:
                baseline = covered
            assert covered == baseline
            # tallies flowed into the engine's stats
            assert result.stats.backend_tallies

    def test_smtlib_alone_degrades_to_unknown_without_binary(self):
        backend = SmtLibBackend("definitely-not-a-solver-binary")
        assert not backend.available
        result = backend.solve(membership("a+b"))
        assert result.status == UNKNOWN
        assert "not installed" in backend.last_error
