"""Unit tests for the ES6-compliant concrete matcher.

These tests pin down exactly the semantics the paper relies on: matching
precedence (greedy/lazy), capture-group recording/clearing, backreferences
with undefined captures, lookaheads, boundaries, anchors and flags.  The
matcher is the CEGAR oracle, so its fidelity is what makes refinement
(Algorithm 1) converge to spec-correct capture assignments.
"""

import pytest

from repro.regex import RegExp
from repro.regex.errors import RegexSyntaxError


def groups(regex, subject, flags=""):
    m = RegExp(regex, flags).exec(subject)
    return None if m is None else list(m)


class TestBasicMatching:
    def test_implicit_wildcard(self):
        assert RegExp("goo+d").test("this is goood stuff")

    def test_no_match(self):
        assert not RegExp("goo+d").test("god")

    def test_empty_pattern_matches_everything(self):
        assert RegExp("").test("")
        assert RegExp("").test("anything")

    def test_exec_index_and_input(self):
        m = RegExp("o+").exec("good")
        assert m.index == 1 and m.input == "good" and m[0] == "oo"

    def test_first_match_wins(self):
        assert RegExp("a|ab").exec("ab")[0] == "a"  # ordered alternation


class TestMatchingPrecedence:
    """Greediness cases — the semantics the model alone cannot see (§3.4)."""

    def test_greedy_star_starves_optional_group(self):
        assert groups(r"^a*(a)?$", "aa") == ["aa", None]

    def test_lazy_star_yields_to_optional_group(self):
        assert groups(r"^a*?(a)?", "aa") == ["a", "a"]

    def test_greedy_consumes_maximum(self):
        assert groups(r"(a+)(a*)", "aaaa") == ["aaaa", "aaaa", ""]

    def test_lazy_consumes_minimum(self):
        assert groups(r"(a+?)(a*)", "aaaa") == ["aaaa", "a", "aaa"]

    def test_lazy_optional(self):
        assert groups(r"(a??)a", "aa") == ["a", ""]

    def test_backtracking_for_suffix(self):
        assert groups(r"(a*)ab", "aaab") == ["aaab", "aa"]

    def test_nested_quantifier_precedence(self):
        assert groups(r"((a*)b)*", "aabb") == ["aabb", "b", ""]


class TestCaptureGroups:
    def test_paper_example_numbering(self):
        # §2.2: "bbbbcbcd".match(/a|((b)*c)*d/) === ["bbbbcbcd", "bc", "b"]
        assert groups(r"a|((b)*c)*d", "bbbbcbcd") == ["bbbbcbcd", "bc", "b"]

    def test_unmatched_group_is_undefined(self):
        assert groups(r"(a)|(b)", "b") == ["b", None, "b"]

    def test_captures_cleared_on_quantifier_reentry(self):
        # The final iteration matches 'b', so (a) must be reset to undefined.
        assert groups(r"^(?:(a)|b)*$", "ab") == ["ab", None]

    def test_last_iteration_capture_wins(self):
        assert groups(r"(?:(\w)x)+", "axbx") == ["axbx", "b"]

    def test_empty_capture_differs_from_undefined(self):
        assert groups(r"(a*)b", "b") == ["b", ""]
        assert groups(r"(a)?b", "b") == ["b", None]

    def test_nested_captures(self):
        assert groups(r"((a)(b(c)))", "abc") == ["abc", "abc", "a", "bc", "c"]


class TestBackreferences:
    def test_simple_backref(self):
        assert RegExp(r"(\w+)\s\1").test("hello hello")
        assert not RegExp(r"^(\w+) \1$").test("hello world")

    def test_xml_tag_pair(self):
        m = RegExp(r"<(\w+)>([0-9]*)<\/\1>").exec("<timeout>500</timeout>")
        assert list(m) == ["<timeout>500</timeout>", "timeout", "500"]

    def test_undefined_backref_matches_empty(self):
        assert groups(r"(?:a|(b))\1x", "ax") == ["ax", None]

    def test_backref_to_later_group_is_empty(self):
        # \1 read before (a) has matched: matches ε.
        assert RegExp(r"^\1(a)$").test("a")

    def test_spec_language_of_mutable_backref_regex(self):
        # Under spec semantics /((a|b)\2)+\1\2/ accepts (aa|bb)*(aaaaa|bbbbb).
        # Note: the paper's §4.3 prose claims "aabbaabbb" matches; the spec
        # algorithm (and Perl semantics) disagree — see DESIGN.md.
        r = RegExp(r"^((a|b)\2)+\1\2$")
        assert r.test("aaaaa")
        assert r.test("aabbbbb")
        assert r.test("bbaaaaa")
        assert not r.test("aabbaabbb")
        assert not r.test("aabaaabaa")

    def test_backref_inside_quantifier(self):
        assert RegExp(r"^(a|b)\1+$").test("aaa")
        assert not RegExp(r"^(a|b)\1+$").test("aba")

    def test_case_insensitive_backref(self):
        assert RegExp(r"(abc)\1", "i").test("abcABC")


class TestLookaheads:
    def test_positive(self):
        assert RegExp(r"a(?=b)").test("ab")
        assert not RegExp(r"^a(?=b)$").test("ac")

    def test_negative(self):
        assert RegExp(r"^a(?!b)").test("ac")
        assert not RegExp(r"^a(?!b)").test("ab")

    def test_zero_width(self):
        m = RegExp(r"a(?=bc)bc").exec("abc")
        assert m[0] == "abc"

    def test_captures_persist_from_positive_lookahead(self):
        assert groups(r"(?=(a+))a", "aaa") == ["a", "aaa"]

    def test_captures_discarded_from_negative_lookahead(self):
        assert groups(r"(?!(x))a", "a") == ["a", None]

    def test_lookahead_intersection(self):
        # Word that is both 3 chars and starts with 'ab'.
        r = RegExp(r"^(?=ab).{3}$")
        assert r.test("abc") and not r.test("xbc") and not r.test("abcd")


class TestAnchorsAndBoundaries:
    def test_anchored_match(self):
        assert RegExp("^abc$").test("abc")
        assert not RegExp("^abc$").test("xabc")

    def test_multiline_anchors(self):
        assert RegExp("^b$", "m").test("a\nb")
        assert RegExp("^b", "m").test("a\nbc")
        assert not RegExp("^b$").test("a\nb")

    def test_word_boundary(self):
        assert RegExp(r"\bcat\b").test("the cat sat")
        assert not RegExp(r"\bcat\b").test("concatenate")

    def test_non_word_boundary(self):
        assert RegExp(r"\Bcat\B").test("concatenation")
        assert not RegExp(r"^\Bcat").test("cat alone")

    def test_boundary_at_string_edges(self):
        assert RegExp(r"\bword\b").test("word")


class TestFlags:
    def test_ignore_case(self):
        assert RegExp("abc", "i").test("AbC")
        assert RegExp("[a-z]+", "i").test("XYZ")

    def test_sticky_statefulness_paper_example(self):
        r = RegExp("goo+d", "y")
        assert r.test("goood") is True
        assert r.last_index == 5
        assert r.test("goood") is False
        assert r.last_index == 0

    def test_sticky_requires_match_at_last_index(self):
        r = RegExp("b", "y")
        assert not r.test("ab")
        r.last_index = 1
        assert r.test("ab")

    def test_global_exec_iterates(self):
        r = RegExp(r"\d+", "g")
        assert list(r.exec("a12b345")) == ["12"]
        assert list(r.exec("a12b345")) == ["345"]
        assert r.exec("a12b345") is None
        assert r.last_index == 0

    def test_non_global_exec_is_stateless(self):
        r = RegExp(r"\d+")
        assert list(r.exec("a12b345")) == ["12"]
        assert list(r.exec("a12b345")) == ["12"]

    def test_invalid_flags(self):
        with pytest.raises(RegexSyntaxError):
            RegExp("a", "gg")
        with pytest.raises(RegexSyntaxError):
            RegExp("a", "x")


class TestQuantifierEdgeCases:
    def test_empty_match_guard_terminates(self):
        # The empty iteration of (a?) is rejected by the RepeatMatcher
        # guard, so zero iterations run and group 1 stays undefined.
        assert groups(r"(a?)*b", "b") == ["b", None]
        assert RegExp(r"(?:a*)*b").test("b")

    def test_bounded_repetition(self):
        assert RegExp(r"^a{2,3}$").test("aa")
        assert RegExp(r"^a{2,3}$").test("aaa")
        assert not RegExp(r"^a{2,3}$").test("a")
        assert not RegExp(r"^a{2,3}$").test("aaaa")

    def test_exact_repetition(self):
        assert RegExp(r"^(ab){2}$").test("abab")
        assert not RegExp(r"^(ab){2}$").test("ab")

    def test_repetition_of_group_keeps_last(self):
        assert groups(r"^(a|b){3}$", "aba") == ["aba", "a"]

    def test_zero_repetition(self):
        assert groups(r"^(a){0}$", "") == ["", None]


class TestUnicodeInputs:
    def test_bmp_literal(self):
        assert RegExp("é").test("café")

    def test_astral_literal_via_escape(self):
        assert RegExp(r"\u{1F600}", "u").test("smile 😀")

    def test_dot_excludes_newline_only(self):
        assert RegExp("^.$").test("é")
        assert not RegExp("^.$").test("\n")
