"""Unit tests for §4.1 preprocessing (Table 1 rewritings)."""

from repro.regex import RegExp, parse_regex
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Group,
    Quantifier,
    walk,
)
from repro.regex.unparse import unparse
from repro.model.preprocess import (
    INPUT_CHAR,
    META_END,
    META_START,
    expand_repetition,
    preprocess,
    rewrite_lazy_to_greedy,
    wildcard,
    wrap_for_exec,
)


def parse(src):
    return parse_regex(src).body


class TestLazyRewriting:
    def test_lazy_star_becomes_greedy(self):
        node = rewrite_lazy_to_greedy(parse("a*?"))
        assert isinstance(node, Quantifier) and not node.lazy

    def test_nested_lazy(self):
        node = rewrite_lazy_to_greedy(parse("(?:a+?b??)*?"))
        assert all(
            not n.lazy for n in walk(node) if isinstance(n, Quantifier)
        )

    def test_language_preserved(self):
        # Greedy/lazy have identical languages (only precedence differs).
        src = "a*?(?:bc)+?d??"
        rewritten = unparse(rewrite_lazy_to_greedy(parse(src)))
        for word in ("d", "abcd", "aabcbc", ""):
            assert RegExp(f"^(?:{src})$").test(word) == RegExp(
                f"^(?:{rewritten})$"
            ).test(word)


class TestRepetitionExpansion:
    def test_plus_becomes_star_concat(self):
        node = expand_repetition(parse("a+"))
        assert isinstance(node, Concat)
        assert isinstance(node.parts[0], Quantifier)
        assert node.parts[0].max is None

    def test_optional_becomes_alternation(self):
        node = expand_repetition(parse("a?"))
        assert isinstance(node, Alternation)
        assert isinstance(node.options[1], Empty)

    def test_bounded_repetition_expands_to_alternation(self):
        node = expand_repetition(parse("a{1,3}"))
        assert isinstance(node, Alternation)
        assert len(node.options) == 3

    def test_expansion_language_equivalence(self):
        for src in ("a{2,4}", "(?:ab){1,2}", "a{0,2}b", "a{3}"):
            expanded = unparse(expand_repetition(parse(src)))
            for word in ("", "a", "aa", "aaa", "aaaa", "ab", "abab", "b"):
                assert RegExp(f"^(?:{src})$").test(word) == RegExp(
                    f"^(?:{expanded})$"
                ).test(word), (src, expanded, word)

    def test_capture_correspondence_last_copy_wins(self):
        # §4.1: after expansion only the final copy of a duplicated body
        # carries the capture group, realising Ci = Ci,2.
        node = expand_repetition(parse("(a|b)+"))
        groups = [n for n in walk(node) if isinstance(n, Group)]
        assert len(groups) == 1

    def test_huge_bounds_left_intact(self):
        node = expand_repetition(parse("a{2,100}"))
        assert isinstance(node, Quantifier)

    def test_full_preprocess(self):
        node = preprocess(parse("(x)+?y{1,2}"))
        assert all(
            not n.lazy for n in walk(node) if isinstance(n, Quantifier)
        )


class TestWrapping:
    def test_wrap_adds_group_zero(self):
        wrapped = wrap_for_exec(parse("ab"))
        groups = [n for n in walk(wrapped) if isinstance(n, Group)]
        assert any(g.index == 0 for g in groups)

    def test_wrapper_wildcards_exclude_meta(self):
        assert META_START not in INPUT_CHAR.charset
        assert META_END not in INPUT_CHAR.charset
        assert "a" in INPUT_CHAR.charset and "\n" in INPUT_CHAR.charset

    def test_wildcard_is_lazy_star(self):
        w = wildcard()
        assert isinstance(w, Quantifier) and w.min == 0 and w.max is None
