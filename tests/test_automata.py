"""Unit and property tests for the automata substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    Dfa,
    NotRegularError,
    dfa_for,
    dfa_for_pattern,
    erase_captures,
    intersect_all,
    membership_witness,
    nfa_for,
    to_nfa,
)
from repro.regex import parse_regex
from repro.regex.charclass import CharSet
from repro.regex.matcher import RegExp


def dfa(src):
    return dfa_for_pattern(src)


class TestBasics:
    def test_literal(self):
        d = dfa("abc")
        assert d.accepts_word("abc")
        assert not d.accepts_word("ab")
        assert not d.accepts_word("abcd")

    def test_alternation(self):
        d = dfa("cat|dog")
        assert d.accepts_word("cat") and d.accepts_word("dog")
        assert not d.accepts_word("cog")

    def test_kleene_star(self):
        d = dfa("(?:ab)*")
        for word in ("", "ab", "abab", "ababab"):
            assert d.accepts_word(word)
        assert not d.accepts_word("aba")

    def test_plus_and_optional(self):
        assert dfa("a+").accepts_word("aaa")
        assert not dfa("a+").accepts_word("")
        assert dfa("a?").accepts_word("") and dfa("a?").accepts_word("a")

    def test_bounded_repetition(self):
        d = dfa("a{2,4}")
        assert not d.accepts_word("a")
        for n in (2, 3, 4):
            assert d.accepts_word("a" * n)
        assert not d.accepts_word("aaaaa")

    def test_classes_and_dot(self):
        assert dfa(r"\d+").accepts_word("0451")
        assert not dfa(r"\d+").accepts_word("x")
        assert dfa(".").accepts_word("é")
        assert not dfa(".").accepts_word("\n")

    def test_empty_pattern(self):
        d = dfa("")
        assert d.accepts_word("")
        assert not d.accepts_word("a")

    def test_capture_groups_erased(self):
        d = dfa("(ab)+")
        assert d.accepts_word("abab")

    def test_non_regular_rejected(self):
        with pytest.raises(NotRegularError):
            to_nfa(parse_regex(r"(a)\1").body)
        with pytest.raises(NotRegularError):
            to_nfa(parse_regex(r"(?=a)b").body)
        with pytest.raises(NotRegularError):
            to_nfa(parse_regex(r"^a").body)


class TestEraseCaptures:
    def test_erase_is_deep(self):
        node = parse_regex(r"((a)|b)*(c)").body
        from repro.regex import ast

        assert not any(
            isinstance(n, ast.Group) for n in ast.walk(erase_captures(node))
        )

    def test_language_unchanged(self):
        src = r"(a|(bc))+d"
        d = dfa_for(parse_regex(src).body)
        for word in ("ad", "bcd", "abcad", ""):
            assert d.accepts_word(word) == bool(
                RegExp(f"^(?:{src})$").test(word)
            )


class TestBooleanAlgebra:
    def test_complement(self):
        d = dfa("a+").complement()
        assert d.accepts_word("") and d.accepts_word("b")
        assert not d.accepts_word("aa")

    def test_double_complement(self):
        d = dfa("ab|ba")
        dd = d.complement().complement()
        for word in ("ab", "ba", "aa", ""):
            assert d.accepts_word(word) == dd.accepts_word(word)

    def test_intersection(self):
        d = dfa("a*b*").intersect(dfa(".{3}"))
        assert d.accepts_word("aab") and d.accepts_word("abb")
        assert not d.accepts_word("ab")
        assert not d.accepts_word("aba")

    def test_empty_intersection(self):
        assert dfa("a+").intersect(dfa("b+")).is_empty()

    def test_union(self):
        d = dfa("a").union(dfa("b"))
        assert d.accepts_word("a") and d.accepts_word("b")
        assert not d.accepts_word("c")

    def test_difference(self):
        d = dfa("a*").difference(dfa("aa"))
        assert d.accepts_word("a") and d.accepts_word("aaa")
        assert not d.accepts_word("aa")

    def test_equivalence(self):
        assert dfa("(?:ab)*a?").equivalent(dfa("a(?:ba)*b?|"))
        assert not dfa("a*").equivalent(dfa("a+"))

    def test_intersect_all(self):
        combined = intersect_all(
            [dfa(r"\w+"), dfa(".{2,3}"), dfa("a.*")]
        )
        assert combined.accepts_word("ab")
        assert not combined.accepts_word("b")
        assert intersect_all([]) is None

    def test_intersect_all_short_circuits_on_empty(self):
        # a+ ∩ b+ is already empty; the huge third component must never
        # be multiplied in (its states cannot appear in the result).
        wide = dfa("[a-z]{1,8}")
        combined = intersect_all([dfa("a+"), dfa("b+"), wide])
        assert combined.is_empty()
        assert combined.n_states < wide.n_states


class TestPartialDfa:
    """Hand-built partial automata (no construction path makes these,
    but deserialization or tests can) must not break the algebra."""

    def partial(self):
        # One state, only 'a' has a transition; accepts a*.
        return Dfa(
            n_states=1,
            start=0,
            accepts=frozenset({0}),
            transitions={0: [(CharSet.of("a"), 0)]},
        )

    def test_is_total(self):
        assert not self.partial().is_total()
        assert dfa("a*").is_total()

    def test_completed_preserves_language(self):
        total = self.partial().completed()
        assert total.is_total()
        for word, expected in (("", True), ("aa", True), ("b", False)):
            assert total.accepts_word(word) == expected

    def test_complement_of_partial_dfa_is_sound(self):
        # Flipping accepting states of a *partial* DFA would classify
        # "b" (which falls off the missing transition) as rejected by
        # both the automaton and its complement.
        comp = self.partial().complement()
        assert comp.is_total()
        assert comp.accepts_word("b")
        assert comp.accepts_word("ab")
        assert not comp.accepts_word("")
        assert not comp.accepts_word("aa")

    def test_complement_of_total_dfa_stays_a_view(self):
        total = dfa("a+")
        comp = total.complement()
        assert comp.transitions is total.transitions


class TestEmptinessAndWitness:
    def test_emptiness(self):
        assert dfa("a").intersect(dfa("b")).is_empty()
        assert not dfa("a|b").is_empty()

    def test_witness_is_shortest(self):
        assert membership_witness(parse_regex("aaa|a|aa").body) == "a"
        assert membership_witness(parse_regex("a*").body) == ""

    def test_witness_of_empty_language(self):
        pattern = parse_regex("a").body
        assert dfa_for(pattern).intersect(dfa("b")).shortest_word() is None

    def test_live_states_memoized_per_instance(self):
        """Regression: repeated emptiness checks must not recompute the
        backward reachability sweep — the result is interned on the
        instance (identity, not just equality, on the second call)."""
        d = dfa("a*b|c+")
        first = d.live_states()
        assert d.live_states() is first
        d.is_empty()
        d.is_empty()
        assert d.live_states() is first

    def test_live_states_memo_not_shared_with_complement(self):
        # Complement changes the accepting set, so its liveness differs;
        # the memo must start fresh on the derived view.
        d = dfa("a+").intersect(dfa("b+"))  # empty language
        assert d.is_empty()
        c = d.complement()
        assert not c.is_empty()
        assert c.live_states() is not d.live_states()

    def test_left_quotient_shares_the_memo(self):
        d = dfa("ab*")
        alive = d.live_states()
        assert d.quotient_left("a").live_states() is alive


class TestEnumeration:
    def test_words_in_length_order(self):
        words = list(dfa("a*").words(max_count=5))
        assert words == ["", "a", "aa", "aaa", "aaaa"]

    def test_words_all_accepted(self):
        d = dfa(r"[ab]{1,3}c")
        for word in d.words(max_count=30):
            assert d.accepts_word(word)

    def test_words_variety(self):
        words = set(dfa("[a-z]").words(max_count=3))
        assert len(words) == 3

    def test_words_empty_language(self):
        assert list(dfa("a").intersect(dfa("b")).words(max_count=5)) == []

    def test_max_length_respected(self):
        words = list(dfa("a*").words(max_length=3))
        assert words == ["", "a", "aa", "aaa"]

    def test_enumeration_order_is_pinned(self):
        # The tuple-prefix frontier must preserve the historical order
        # exactly: breadth-first by length, edges in transition order,
        # characters in sample order.  The solver's iterative deepening
        # and refinement exclusions key off this order being stable.
        words = list(dfa("[ab]c?").words(max_count=6))
        assert words == ["a", "b", "ac", "bc"]
        words = list(dfa("(?:a|bb)*").words(max_count=6))
        assert words == ["", "a", "aa", "bb", "aaa", "abb"]


class TestMinimization:
    def test_minimize_preserves_language(self):
        d = dfa("(?:a|b)*abb")
        m = d.minimize()
        assert m.n_states <= d.n_states
        for word in ("abb", "aabb", "babb", "ab", "", "abba"):
            assert d.accepts_word(word) == m.accepts_word(word)

    def test_minimize_collapses(self):
        # a|b compiles to several NFA branches but needs only 3 DFA states.
        assert dfa("a|b").minimize().n_states <= 3


# ---------------------------------------------------------------------------
# Property tests: the DFA pipeline agrees with (a) direct NFA simulation and
# (b) the backtracking matcher, on a generated classical-regex fragment.
# ---------------------------------------------------------------------------

_LITERALS = st.sampled_from(["a", "b", "c", "0", "1"])


def _regex_trees(depth):
    if depth == 0:
        return _LITERALS
    sub = _regex_trees(depth - 1)
    return st.one_of(
        _LITERALS,
        st.tuples(sub, sub).map(lambda t: f"(?:{t[0]}{t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"(?:{t[0]}|{t[1]})"),
        sub.map(lambda s: f"(?:{s})*"),
        sub.map(lambda s: f"(?:{s})?"),
    )


@st.composite
def classical_regex(draw):
    return draw(_regex_trees(3))


@given(src=classical_regex(), word=st.text(alphabet="abc01", max_size=6))
@settings(max_examples=150, deadline=None)
def test_dfa_agrees_with_nfa_simulation(src, word):
    node = parse_regex(src).body
    assert nfa_for(node).accepts_word(word) == dfa_for(node).accepts_word(word)


@given(src=classical_regex(), word=st.text(alphabet="abc01", max_size=6))
@settings(max_examples=150, deadline=None)
def test_dfa_agrees_with_backtracking_matcher(src, word):
    node = parse_regex(src).body
    anchored = RegExp(f"^(?:{src})$")
    assert dfa_for(node).accepts_word(word) == anchored.test(word)


@given(src=classical_regex())
@settings(max_examples=60, deadline=None)
def test_enumerated_words_are_members(src):
    d = dfa_for(parse_regex(src).body)
    for word in d.words(max_count=10, max_length=8):
        assert d.accepts_word(word)


@given(src=classical_regex(), word=st.text(alphabet="abc01", max_size=5))
@settings(max_examples=100, deadline=None)
def test_complement_is_exact(src, word):
    d = dfa_for(parse_regex(src).body)
    assert d.complement().accepts_word(word) == (not d.accepts_word(word))
