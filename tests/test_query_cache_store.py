"""Tests for the persistent solver query store and LRU cache tiers.

The store mirrors the automata disk store's contract: atomic writes,
corrupt/mismatched entries evicted as misses (never errors), counters
for every tier.  The shared (manager-protocol) cache must evict LRU —
touch-on-hit — not merely oldest-inserted.
"""

import os
import pickle
import threading

import pytest

from repro.automata.build import erase_captures
from repro.constraints import Eq, InRe, StrConst, StrVar, conj
from repro.regex import parse_regex
from repro.solver import SAT, Model, SolverResult, UNKNOWN, UNSAT
from repro.solver.backends import CachedBackend, QueryCache, QueryDiskStore
from repro.solver.backends.cached import (
    CachedResult,
    QUERY_STORE_VERSION,
    SharedQueryCache,
)


def membership(pattern: str, var_name: str = "x"):
    node = erase_captures(parse_regex(pattern, "").body)
    return InRe(StrVar(var_name), node)


X = StrVar("x")


class _Stub:
    def __init__(self, status, model=None):
        self.status = status
        self.model = model
        self.name = "stub"
        self.calls = 0

    def solve(self, formula):
        self.calls += 1
        return SolverResult(self.status, self.model)


class TestQueryDiskStore:
    def test_round_trip(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        entry = CachedResult(SAT, (("?0", "ab"), ("?1", None)))
        store.put("fp-1", entry)
        assert store.get("fp-1") == entry
        assert store.get("fp-1").assignment[1] == ("?1", None)  # ⊥ survives
        assert store.stores == 1 and store.loads == 2
        assert len(store) == 1

    def test_unsat_entry_round_trips(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        store.put("fp-2", CachedResult(UNSAT, None))
        assert store.get("fp-2") == CachedResult(UNSAT, None)

    def test_missing_entry_is_a_silent_miss(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        assert store.get("nope") is None
        assert store.failures == 0

    def test_corrupt_entry_is_evicted_as_a_miss(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        store.put("fp", CachedResult(UNSAT))
        path = store._entry("fp")
        with open(path, "wb") as handle:
            handle.write(b"\x80garbage")
        assert store.get("fp") is None
        assert store.failures == 1
        assert not os.path.exists(path)  # evicted, not left to re-fail

    def test_version_or_magic_mismatch_is_a_miss(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        with open(store._entry("fp"), "wb") as handle:
            pickle.dump(
                ("wrong-magic", QUERY_STORE_VERSION, "fp", "unsat", None),
                handle,
            )
        assert store.get("fp") is None
        assert store.failures == 1

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        # A hash collision (or a renamed file) must not replay a wrong
        # answer: the blob carries the fingerprint, verified on load.
        store = QueryDiskStore(str(tmp_path / "q"))
        store.put("other-fp", CachedResult(UNSAT))
        os.replace(store._entry("other-fp"), store._entry("fp"))
        assert store.get("fp") is None
        assert store.failures == 1

    def test_versioned_layout(self, tmp_path):
        store = QueryDiskStore(str(tmp_path / "q"))
        assert store.path.endswith(f"v{QUERY_STORE_VERSION}")


class TestQueryCacheWithStore:
    def test_put_writes_through_and_fresh_cache_reads_back(self, tmp_path):
        path = str(tmp_path / "q")
        cache = QueryCache(store_path=path)
        cache.put("fp", CachedResult(UNSAT))
        fresh = QueryCache(store_path=path)  # a new process, same dir
        assert fresh.get("fp") == CachedResult(UNSAT)
        assert fresh.disk_hits == 1
        assert fresh.hits == 1 and fresh.misses == 0
        # promoted to memory: the second lookup never touches disk
        assert fresh.get("fp") is not None
        assert fresh.disk_hits == 1

    def test_counters_expose_every_tier(self, tmp_path):
        cache = QueryCache(store_path=str(tmp_path / "q"))
        cache.put("fp", CachedResult(UNSAT))
        cache.get("fp")
        cache.get("absent")
        counters = cache.counters()
        assert counters["disk_stores"] == 1
        assert counters["hits"] == 1 and counters["misses"] == 1
        assert "disk_failures" in counters and "disk_loads" in counters

    def test_unusable_path_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = QueryCache(store_path=str(blocker / "sub"))
        assert cache.store is None
        cache.put("fp", CachedResult(UNSAT))  # must not raise
        assert cache.get("fp") is not None

    def test_reattach_same_path_keeps_counters(self, tmp_path):
        path = str(tmp_path / "q")
        cache = QueryCache(store_path=path)
        cache.put("fp", CachedResult(UNSAT))
        store = cache.store
        cache.attach_store(path)
        assert cache.store is store

    def test_cached_backend_replays_across_processes(self, tmp_path):
        """The cross-invocation path: a fresh CachedBackend on the same
        dir answers from disk without consulting its inner backend."""
        path = str(tmp_path / "q")
        formula = membership("a+b")
        inner1 = _Stub(SAT, Model({X: "aab"}))
        first = CachedBackend(inner1, cache=QueryCache(store_path=path))
        assert first.solve(formula).status == SAT
        assert inner1.calls == 1

        inner2 = _Stub(SAT, Model({X: "aab"}))
        second = CachedBackend(inner2, cache=QueryCache(store_path=path))
        result = second.solve(formula)
        assert result.status == SAT
        assert result.model[X] == "aab"
        assert inner2.calls == 0  # replayed from disk

    def test_disk_replay_translates_variable_renaming(self, tmp_path):
        """Entries are stored under canonical names; a structurally
        identical query with different variable names replays from disk
        with its own variables in the model."""
        path = str(tmp_path / "q")
        first = CachedBackend(
            _Stub(SAT, Model({X: "ab"})), cache=QueryCache(store_path=path)
        )
        first.solve(conj([membership("ab?"), Eq(X, StrConst("ab"))]))

        y = StrVar("y!7")
        renamed = conj(
            [membership("ab?", "y!7"), Eq(y, StrConst("ab"))]
        )
        second = CachedBackend(
            _Stub(UNKNOWN), cache=QueryCache(store_path=path)
        )
        result = second.solve(renamed)
        assert result.status == SAT
        assert result.model[y] == "ab"

    def test_unknown_is_never_persisted(self, tmp_path):
        path = str(tmp_path / "q")
        backend = CachedBackend(
            _Stub(UNKNOWN), cache=QueryCache(store_path=path)
        )
        backend.solve(membership("a"))
        assert len(backend.cache.store) == 0


class TestSharedQueryCacheLru:
    """The manager-protocol cache accepts a plain dict + lock, which is
    what these tests use — the eviction logic is identical."""

    def _cache(self, maxsize=2):
        return SharedQueryCache(dict(), threading.Lock(), maxsize=maxsize)

    def test_hit_touches_recency(self):
        cache = self._cache(maxsize=2)
        cache.put("a", CachedResult(UNSAT))
        cache.put("b", CachedResult(UNSAT))
        assert cache.get("a") is not None  # touch: a is now most recent
        cache.put("c", CachedResult(UNSAT))  # evicts b, NOT a
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.get("c") is not None
        assert cache.evictions == 1

    def test_untouched_oldest_still_goes_first(self):
        cache = self._cache(maxsize=2)
        cache.put("a", CachedResult(UNSAT))
        cache.put("b", CachedResult(UNSAT))
        cache.put("c", CachedResult(UNSAT))
        assert cache.get("a") is None
        assert cache.get("b") is not None

    def test_disk_store_attach(self, tmp_path):
        path = str(tmp_path / "q")
        cache = self._cache(maxsize=8)
        cache.attach_store(path)
        cache.put("fp", CachedResult(UNSAT))
        # A different worker (fresh manager dict) pulls it from disk.
        other = self._cache(maxsize=8)
        other.attach_store(path)
        assert other.get("fp") == CachedResult(UNSAT)
        assert other.disk_hits == 1
        assert "disk_stores" in cache.counters()


class TestRunnerQueryCacheWiring:
    def test_inline_runner_persists_across_invocations(self, tmp_path):
        from repro.service import BatchRunner, RunnerConfig, SolveJob

        path = str(tmp_path / "q")
        jobs = [
            SolveJob(job_id="s0", pattern="a+b"),
            SolveJob(job_id="s1", pattern="(x|y)+"),
        ]
        config = RunnerConfig(workers=0, query_cache=path)
        cold = BatchRunner(config).run(jobs)
        assert all(r.status == "ok" for r in cold.results)
        assert cold.cache_misses > 0
        warm = BatchRunner(config).run(
            [
                SolveJob(job_id="t0", pattern="a+b"),
                SolveJob(job_id="t1", pattern="(x|y)+"),
            ]
        )
        assert all(r.status == "ok" for r in warm.results)
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0

    def test_pool_runner_query_cache_round_trip(self, tmp_path):
        from repro.service import BatchRunner, RunnerConfig, SolveJob

        path = str(tmp_path / "q")
        jobs = [SolveJob(job_id="s0", pattern="ab+c")]
        config = RunnerConfig(workers=1, query_cache=path, job_timeout=60.0)
        BatchRunner(config).run(jobs)
        warm = BatchRunner(config).run(jobs)
        assert warm.results[0].status == "ok"
        assert warm.cache_hits > 0 and warm.cache_misses == 0

    def test_job_level_query_cache_stays_job_private(self, tmp_path):
        """A job carrying its own query_cache must not leak persistence
        to unrelated jobs sharing the worker-wide cache: the store ends
        up with exactly the entries of the jobs that asked for it."""
        from repro.service import BatchRunner, RunnerConfig, SolveJob

        alone = str(tmp_path / "alone")
        mixed = str(tmp_path / "mixed")
        runner = BatchRunner(RunnerConfig(workers=0))
        runner.run(
            [SolveJob(job_id="a", pattern="a+b", query_cache=alone)]
        )
        runner.run(
            [
                SolveJob(job_id="a", pattern="a+b", query_cache=mixed),
                SolveJob(job_id="b", pattern="c?d{2}"),  # no persistence
            ]
        )
        assert len(QueryDiskStore(alone)) > 0
        assert len(QueryDiskStore(mixed)) == len(QueryDiskStore(alone))

    def test_job_level_query_cache_spec_round_trips(self, tmp_path):
        import json

        from repro.service import SolveJob, job_from_spec

        job = SolveJob(
            job_id="s0",
            pattern="a+",
            backend="cached:native",
            query_cache=str(tmp_path / "q"),
        )
        spec = json.loads(json.dumps(job.to_spec()))
        rebuilt = job_from_spec(spec)
        assert rebuilt == job
        result = rebuilt.run()
        assert result.status == "ok"
        assert len(QueryDiskStore(str(tmp_path / "q"))) > 0
