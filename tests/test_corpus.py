"""Tests for the survey pipeline (§7.1): extraction, classification,
corpus generation and the Table 4/5 aggregation."""

import pytest

from repro.corpus import (
    CorpusConfig,
    RegexFeatures,
    SyntheticPackage,
    classify,
    extract_regex_literals,
    format_table4,
    format_table5,
    generate_corpus,
    survey_packages,
)


class TestExtraction:
    def test_simple_literal(self):
        found = extract_regex_literals("var re = /ab+c/g;")
        assert len(found) == 1
        assert found[0].source == "ab+c" and found[0].flags == "g"

    def test_division_not_extracted(self):
        assert extract_regex_literals("var x = a / b / c;") == []

    def test_division_after_paren(self):
        assert extract_regex_literals("var x = (a + b) / 2;") == []

    def test_regex_after_return(self):
        found = extract_regex_literals("function f() { return /x/; }")
        assert len(found) == 1

    def test_regex_in_call(self):
        found = extract_regex_literals("s.replace(/a/g, 'b');")
        assert len(found) == 1

    def test_string_contents_ignored(self):
        assert extract_regex_literals("var s = '/not a regex/';") == []
        assert extract_regex_literals('var s = "/nope/g";') == []

    def test_comment_contents_ignored(self):
        assert extract_regex_literals("// see /abc/ for details") == []
        assert extract_regex_literals("/* /abc/ */") == []

    def test_class_with_slash(self):
        found = extract_regex_literals("var re = /[/]+/;")
        assert found and found[0].source == "[/]+"

    def test_escaped_slash(self):
        found = extract_regex_literals(r"var re = /a\/b/;")
        assert found and found[0].source == r"a\/b"

    def test_multiple_literals(self):
        src = "var a = /x/; var b = /y/g; var c = /z/i;"
        assert len(extract_regex_literals(src)) == 3

    def test_new_regexp_not_extracted(self):
        # The paper's methodology explicitly skips constructor calls.
        assert extract_regex_literals('new RegExp("abc", "g");') == []

    def test_line_numbers(self):
        found = extract_regex_literals("var a = 1;\nvar r = /x/;\n")
        assert found[0].line == 2


class TestClassification:
    def test_captures(self):
        assert classify(r"(a)(b)").capture_groups
        assert not classify(r"(?:a)").capture_groups

    def test_classes_and_ranges(self):
        features = classify(r"[a-z]+")
        assert features.character_class and features.ranges
        assert classify(r"[abc]").character_class
        assert not classify(r"[abc]").ranges

    def test_quantifiers(self):
        assert classify(r"a+").kleene_plus
        assert classify(r"a*").kleene_star
        assert classify(r"a+?").kleene_plus_lazy
        assert classify(r"a*?").kleene_star_lazy
        assert classify(r"a{2,3}").repetition
        assert classify(r"a{2,3}?").repetition_lazy

    def test_flags(self):
        features = classify(r"a", "gimy")
        assert features.global_flag and features.ignore_case_flag
        assert features.multiline_flag and features.sticky_flag
        assert classify(r"a", "u").unicode_flag

    def test_assertions(self):
        assert classify(r"\bword\b").word_boundary
        assert classify(r"(?=x)a").lookaheads
        assert classify(r"(?!x)a").lookaheads

    def test_backreferences(self):
        assert classify(r"(a)\1").backreferences
        assert not classify(r"(a)\1").quantified_backrefs
        features = classify(r"((a)\2)+")
        assert features.backreferences and features.quantified_backrefs

    def test_unparsable_returns_none(self):
        assert classify(r"(a") is None

    def test_non_classical_summary(self):
        assert classify(r"(a)").any_non_classical()
        assert not classify(r"ab*").any_non_classical()


class TestGeneratorAndSurvey:
    @pytest.fixture(scope="class")
    def result(self):
        corpus = generate_corpus(CorpusConfig(n_packages=2000, seed=7))
        return survey_packages(corpus)

    def test_deterministic(self):
        a = generate_corpus(CorpusConfig(n_packages=50, seed=3))
        b = generate_corpus(CorpusConfig(n_packages=50, seed=3))
        assert [p.files for p in a] == [p.files for p in b]

    def test_all_templates_parse(self, result):
        assert result.unparsable == 0

    def test_table4_shape(self, result):
        """The paper's qualitative Table 4 ordering must hold."""
        assert result.with_source < result.n_packages
        assert result.with_regex < result.with_source
        assert result.with_captures < result.with_regex
        assert result.with_backrefs < result.with_captures
        assert result.with_quantified_backrefs <= result.with_backrefs
        # Rough magnitudes (paper: 91.9%, 34.9%, 20.5%, 3.8%, 0.1%).
        assert 0.85 < result.with_source / result.n_packages < 0.97
        assert 0.25 < result.with_regex / result.n_packages < 0.45
        assert 0.08 < result.with_captures / result.n_packages < 0.30
        assert 0.005 < result.with_backrefs / result.n_packages < 0.08
        assert result.with_quantified_backrefs / result.n_packages < 0.01

    def test_table5_shape(self, result):
        """Captures are common; quantified backrefs are vanishingly rare
        (the fact §4.3's optimization relies on)."""
        uniques = result.feature_uniques
        assert uniques["capture_groups"] > uniques["backreferences"]
        assert uniques["backreferences"] >= uniques["quantified_backrefs"]
        assert uniques["quantified_backrefs"] <= 2
        totals = result.feature_totals
        assert totals["capture_groups"] > 0.15 * result.total_regexes
        assert totals["quantified_backrefs"] < 0.01 * result.total_regexes

    def test_duplication(self, result):
        """Regexes repeat across packages (9.5M vs 306k in the paper)."""
        assert result.total_regexes > 5 * result.unique_regexes

    def test_formatting(self, result):
        table4 = format_table4(result)
        assert "with capture groups" in table4
        table5 = format_table5(result)
        assert "Backreferences" in table5 and "%" in table5

    def test_empty_package_handling(self):
        result = survey_packages([SyntheticPackage("empty")])
        assert result.with_source == 0
        assert result.table4()[0].count == 1
