"""Tests for the Definition 1 reference enumeration utilities."""

from repro.model.capturing import (
    capturing_tuples,
    is_member,
    language_slice,
    words_over,
)


class TestWordsOver:
    def test_length_order(self):
        words = list(words_over("ab", 2))
        assert words == ["", "a", "b", "aa", "ab", "ba", "bb"]

    def test_single_letter_alphabet(self):
        assert list(words_over("x", 3)) == ["", "x", "xx", "xxx"]

    def test_zero_bound(self):
        assert list(words_over("ab", 0)) == [""]


class TestCapturingTuples:
    def test_tuple_layout_matches_definition1(self):
        tuples = dict(capturing_tuples(r"^(a)(b)?$", max_length=2))
        assert tuples["a"] == ("a", "a", None)
        assert tuples["ab"] == ("ab", "a", "b")

    def test_undefined_vs_empty(self):
        tuples = dict(capturing_tuples(r"^(a*)(b)?$", alphabet="ab",
                                       max_length=1))
        # "" matches with C1 = "" (empty) and C2 = ⊥ (undefined).
        assert tuples[""] == ("", "", None)

    def test_non_members_absent(self):
        slice_ = language_slice(r"^ab$", max_length=3)
        assert slice_ == frozenset({"ab"})

    def test_backreference_language(self):
        slice_ = language_slice(r"^(a|b)\1$", max_length=2)
        assert slice_ == frozenset({"aa", "bb"})

    def test_flags_respected(self):
        slice_ = language_slice(r"^a$", flags="i", alphabet="aA",
                                max_length=1)
        assert slice_ == frozenset({"a", "A"})


class TestIsMember:
    def test_member_returns_captures(self):
        assert is_member(r"(go+)d", "good") == ("good", "goo")

    def test_non_member_returns_none(self):
        assert is_member(r"^x$", "y") is None
