"""Shared fixtures for the test suite."""

import pytest

from repro.automata import clear_caches


@pytest.fixture
def clean_automata():
    """A pristine automata cache before *and* after the test.

    Resets the node caches, the fingerprint interner, and any attached
    on-disk store handle — tests exercising compilation, cache counters,
    or disk persistence should depend on this instead of calling
    ``clear_caches()`` ad hoc (which would leak a configured store into
    later tests if the test fails midway).
    """
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(autouse=True)
def _reset_obs():
    """Leave tracing and metrics strictly disabled after every test.

    Observability is module-global switches; a test that enables a
    tracer or registry and fails midway must not leak spans (or their
    overhead) into the rest of the suite.
    """
    yield
    from repro import obs

    obs.shutdown()


@pytest.fixture(autouse=True)
def _reset_faults():
    """No fault plan and no tripped breakers may outlive a test.

    Fault injection and circuit breakers are process-global (the plan
    so workers can inherit it, the breakers so they persist across
    backend instances); a chaos test that fails midway must not leave
    later tests running under its faults or short-circuiting through
    its opened breakers.
    """
    yield
    from repro import faults

    faults.reset()
    faults.reset_breakers()


@pytest.fixture(autouse=True)
def _drain_session_pool():
    """Close the process-global session pool after every test.

    Pooled sessions deliberately outlive backends; in the test suite
    that would leak one fake-solver process per distinct tmp-path spec,
    so the pool is drained between tests (a no-op when it stayed empty).
    """
    yield
    from repro.solver.backends import reset_session_pool

    reset_session_pool()
