"""Tests for the experiment harnesses (small budgets — smoke-level)."""

import pytest

from repro.dse import RegexSupportLevel
from repro.eval import (
    LEVELS,
    REFINEMENT_BANK,
    TABLE6_PACKAGES,
    format_ablation,
    format_table6,
    format_table7,
    format_table8,
    full_vs_concrete,
    generate_dse_package,
    generate_population,
    package_by_name,
    run_breakdown,
    run_refinement_ablation,
    run_table6,
    summarize_solver_stats,
)


class TestPackageSuite:
    def test_eleven_packages(self):
        assert len(TABLE6_PACKAGES) == 11
        names = {p.name for p in TABLE6_PACKAGES}
        assert {"semver", "minimist", "validator", "yn", "moment"} <= names

    def test_lookup(self):
        assert package_by_name("xml").name == "xml"
        with pytest.raises(KeyError):
            package_by_name("nope")

    def test_all_packages_parse_and_run(self):
        from repro.dse import analyze

        for package in TABLE6_PACKAGES:
            result = analyze(package.source, max_tests=2, time_budget=5)
            assert result.tests_run >= 1, package.name
            assert result.statement_count > 0


class TestTable6Harness:
    def test_two_package_run(self):
        rows = run_table6(
            TABLE6_PACKAGES[:2], max_tests=6, time_budget=6
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row.old_coverage <= 1.0
            assert 0.0 <= row.new_coverage <= 1.0
        text = format_table6(rows)
        assert rows[0].library in text

    def test_delta_handles_zero_old(self):
        from repro.eval.tables import Table6Row

        row = Table6Row("x", "1k", 10, 5, 0.0, 0.5)
        assert row.delta_percent is None
        assert "∞" in format_table6([row])


class TestTable7Harness:
    def test_generated_packages_are_valid_minijs(self):
        import random

        from repro.dse.parser import parse_program

        rng = random.Random(42)
        for i in range(20):
            source = generate_dse_package(rng, i)
            program = parse_program(source)
            assert program.statement_count > 3

    def test_population_mixes_generated_and_suite(self):
        population = generate_population(n_packages=15, seed=1)
        names = [name for name, _ in population]
        assert any(name.startswith("gen-") for name in names)
        assert any(name == "semver" for name in names)

    def test_small_breakdown(self):
        population = generate_population(n_packages=3, seed=5)
        rows, runs = run_breakdown(population, max_tests=4, time_budget=4)
        assert len(rows) == len(LEVELS) == 4
        assert len(runs) == 3
        total = full_vs_concrete(runs)
        text = format_table7(rows, total)
        assert "Refinement" in text
        # Coverage can only improve (or stay) as levels are added.
        for run in runs:
            coverages = [run.coverage[label] for label, _ in LEVELS]
            assert coverages[0] <= max(coverages) + 1e-9


class TestTable8Harness:
    def test_summarize(self):
        population = generate_population(n_packages=2, seed=5)
        _, runs = run_breakdown(population, max_tests=4, time_budget=4)
        summary = summarize_solver_stats(
            [run.stats["+ Refinement"] for run in runs]
        )
        assert summary.per_query["all"]["count"] >= 0
        text = format_table8(summary)
        assert "All queries" in text


class TestAblationHarness:
    def test_bank_entries_all_need_refinement(self):
        # Sanity: every bank entry's pinned word admits a spurious model.
        assert len(REFINEMENT_BANK) >= 5

    def test_sweep_monotone(self):
        points = run_refinement_ablation(limits=(0, 5))
        assert points[0].solved <= points[1].solved
        text = format_ablation(points)
        assert "Limit" in text
