"""Cross-node worker fleet: leases, failure detection, re-dispatch.

The coordinator under test is the in-process serve daemon in
``--cluster`` mode (``serve_testing.start_daemon(cluster=True)``);
worker nodes are either in-process (``start_worker`` — same
interpreter, so ``GateJob`` gates control remote timing) or real
``python -m repro worker`` subprocesses for the node-kill chaos
scenario.  Heartbeats run at 0.2s so dead-node detection fits inside
test timeouts.

The invariants under test are the ISSUE's acceptance bars:

- a job leased to a node that dies mid-run is re-dispatched through
  the ordinary retry policy and lands **exactly once** (late ``done``
  frames from superseded epochs are dropped, never double-delivered);
- a fleet with zero live workers degrades to local execution — the
  coordinator *is* a serve daemon, remote dispatch is an optimization;
- quarantine decisions propagate fleet-wide, including to late-joining
  nodes;
- the coordinator's stores serve cache reads/writes for remote nodes.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.serve.client import ServeClient
from repro.service import jobs

from serve_testing import (
    GateJob,
    open_gate,
    reset_gates,
    start_daemon,
    start_worker,
    stop_started,
    wait_until,
)


@pytest.fixture(autouse=True)
def _serve_teardown():
    reset_gates()
    yield
    reset_gates()
    stop_started()


@pytest.fixture
def gate_kind(monkeypatch):
    monkeypatch.setitem(jobs._JOB_KINDS, "gate", GateJob)


def cluster_stats(server) -> dict:
    return server.cluster.stats()


class TestRegistrationAndDispatch:
    def test_remote_execution_and_health(self, tmp_path, gate_kind):
        server, sock = start_daemon(tmp_path, cluster=True, retry_max=2)
        start_worker(sock, capacity=2, worker_id="node-a")
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            ack = client.submit(
                {"kind": "gate", "gate": "", "payload_note": "hi"}
            )
            result = client.wait_result(ack["id"])
            assert result.status == "ok"
            assert result.payload["note"] == "hi"
            health = client.health()
        assert health["ready"] is True
        assert health["cluster"]["workers"] == 1
        assert health["cluster"]["capacity"] == 2
        assert health["cluster"]["remote_results"] == 1
        assert list(health["cluster"]["nodes"]) == ["node-a"]
        assert health["cluster"]["nodes"]["node-a"]["capacity"] == 2
        stats = server.scheduler.stats()
        assert stats["remote_dispatched"] == 1
        assert stats["local_dispatched"] == 0

    def test_zero_workers_serves_locally(self, tmp_path, gate_kind):
        """A coordinator with no fleet is byte-for-byte today's daemon."""
        server, sock = start_daemon(tmp_path, cluster=True)
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            acks = [
                client.submit(
                    {"kind": "gate", "gate": "", "payload_note": str(i)}
                )
                for i in range(3)
            ]
            results = [client.wait_result(a["id"]) for a in acks]
            health = client.health()
        assert all(r.status == "ok" for r in results)
        assert health["ready"] is True  # degraded != unready
        assert health["cluster"]["workers"] == 0
        stats = server.scheduler.stats()
        assert stats["local_dispatched"] == 3
        assert stats["remote_dispatched"] == 0

    def test_worker_snapshot_counts_work(self, tmp_path, gate_kind):
        server, sock = start_daemon(tmp_path, cluster=True)
        harness = start_worker(sock, capacity=1, worker_id="node-s")
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            ack = client.submit({"kind": "gate", "gate": ""})
            assert client.wait_result(ack["id"]).status == "ok"
        wait_until(lambda: harness.node.jobs_done == 1)
        wait_until(lambda: harness.node.heartbeats_sent >= 1)
        snap = harness.node.snapshot()
        assert snap["connected"] is True
        assert snap["registrations"] == 1
        assert cluster_stats(server)["registrations"] == 1


class TestFailureRecovery:
    def test_dead_node_redispatches_exactly_once(self, tmp_path, gate_kind):
        server, sock = start_daemon(
            tmp_path, cluster=True, retry_max=2, retry_backoff_s=0.05
        )
        harness = start_worker(sock, capacity=1, worker_id="node-d")
        with ServeClient(socket_path=sock, timeout=30.0) as client:
            ack = client.submit({"kind": "gate", "gate": "doomed"})
            wait_until(
                lambda: cluster_stats(server)["leases_inflight"] == 1
            )
            # Abrupt stop: the socket dies with the gate still closed,
            # exactly like a node losing power mid-job.
            harness.node.stop()
            wait_until(lambda: cluster_stats(server)["deaths"] == 1)
            wait_until(
                lambda: server.scheduler.stats()["retries"] == 1
            )
            open_gate("doomed")
            result = client.wait_result(ack["id"])
        assert result.status == "ok"
        assert result.retries == 1
        stats = cluster_stats(server)
        assert stats["leases_revoked"] == 1
        # The re-dispatch fell through to the coordinator's own runner
        # (no workers left) — and only one result reached the client.
        sched = server.scheduler.stats()
        assert sched["local_dispatched"] == 1
        assert sched["jobs_completed"] == 1

    def test_missed_heartbeats_declare_death(self, tmp_path, gate_kind):
        """A silent (not closed) connection is detected and revoked."""
        server, sock = start_daemon(
            tmp_path, cluster=True, retry_max=2, retry_backoff_s=0.05
        )
        harness = start_worker(sock, capacity=1, worker_id="node-h")
        # Drop every heartbeat from here on; the socket stays open, so
        # only the coordinator's deadline monitor can notice.
        faults.install(
            {
                "rules": [
                    {
                        "site": "cluster:heartbeat",
                        "action": "drop",
                        "every": 1,
                    }
                ]
            }
        )
        wait_until(
            lambda: cluster_stats(server)["deaths"] >= 1, timeout=15.0
        )
        harness.node.stop()  # stop the rejoin churn
        faults.reset()
        wait_until(lambda: cluster_stats(server)["workers"] == 0)
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            ack = client.submit({"kind": "gate", "gate": ""})
            result = client.wait_result(ack["id"])
        assert result.status == "ok"
        assert server.scheduler.stats()["local_dispatched"] >= 1

    def test_late_done_from_revoked_lease_is_dropped(
        self, tmp_path, gate_kind
    ):
        """Exactly-once: a straggler finishing a revoked lease is junk."""
        server, sock = start_daemon(
            tmp_path,
            cluster=True,
            retry_max=1,
            retry_backoff_s=0.05,
            job_timeout=0.8,
        )
        start_worker(sock, capacity=1, worker_id="node-l")
        with ServeClient(socket_path=sock, timeout=30.0) as client:
            ack = client.submit({"kind": "gate", "gate": "slow"})
            # The scheduler's backstop fires first: the lease is
            # revoked and the job re-dispatched while attempt 1 is
            # still wedged on the (closed) gate.
            wait_until(
                lambda: cluster_stats(server)["leases_revoked"] == 1,
                timeout=15.0,
            )
            open_gate("slow")
            result = client.wait_result(ack["id"])
        assert result.status == "ok"
        assert result.retries == 1
        stats = cluster_stats(server)
        # Attempt 1's done frame arrived with a stale token/epoch and
        # was dropped; only attempt 2 counted.
        wait_until(
            lambda: cluster_stats(server)["late_done_drops"] == 1,
            timeout=10.0,
        )
        assert stats["deaths"] == 0  # node stayed alive throughout
        assert server.scheduler.stats()["timeouts"] == 1
        assert server.scheduler.stats()["jobs_completed"] == 1

    def test_all_workers_down_degrades_and_recovers(
        self, tmp_path, gate_kind
    ):
        server, sock = start_daemon(
            tmp_path, cluster=True, retry_max=2, retry_backoff_s=0.05
        )
        a = start_worker(sock, capacity=1, worker_id="node-x")
        b = start_worker(sock, capacity=1, worker_id="node-y")
        wait_until(lambda: cluster_stats(server)["workers"] == 2)
        a.stop()
        b.stop()
        wait_until(lambda: cluster_stats(server)["workers"] == 0)
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            acks = [
                client.submit(
                    {"kind": "gate", "gate": "", "payload_note": str(i)}
                )
                for i in range(4)
            ]
            results = [client.wait_result(x["id"]) for x in acks]
            health = client.health()
        assert all(r.status == "ok" for r in results)
        assert health["ready"] is True
        assert server.scheduler.stats()["local_dispatched"] == 4


class TestQuarantinePropagation:
    def test_quarantine_broadcasts_fleet_wide(self, tmp_path, gate_kind):
        server, sock = start_daemon(
            tmp_path,
            cluster=True,
            retry_max=3,
            retry_backoff_s=0.05,
            quarantine_after=1,
        )
        harness = start_worker(sock, capacity=1, worker_id="node-q")
        spec = {"kind": "gate", "gate": "poison", "key": "poison"}
        with ServeClient(socket_path=sock, timeout=30.0) as client:
            ack = client.submit(spec)
            wait_until(
                lambda: cluster_stats(server)["leases_inflight"] == 1
            )
            harness.node.stop()  # one node death == the crash fuse
            result = client.wait_result(ack["id"])
            assert result.status == "quarantined"
            # A later node learns the verdict at registration time.
            late = start_worker(sock, capacity=1, worker_id="node-late")
            assert "gate|poison" in late.node.quarantined
            # Resubmission is blocked at admission — no dispatch at all.
            ack2 = client.submit(dict(spec))
            result2 = client.wait_result(ack2["id"])
        assert result2.status == "quarantined"
        stats = server.scheduler.stats()
        assert stats["quarantine_blocked"] == 1
        assert cluster_stats(server)["quarantined_keys"] == 1


class TestRemoteCache:
    def test_cache_round_trip_through_coordinator(self, tmp_path):
        server, sock = start_daemon(
            tmp_path,
            cluster=True,
            query_cache=str(tmp_path / "qc"),
            automata_cache=str(tmp_path / "ac"),
        )
        harness = start_worker(
            sock, capacity=1, worker_id="node-c", remote_cache=True
        )
        node = harness.node
        # The registered frame advertised the coordinator's stores and
        # the node wired remote read-through adapters into its runner.
        store = node.runner.config.query_cache
        assert store is not None and not isinstance(store, str)
        assert store.root.startswith("remote://")
        # put → coordinator's disk store; get → same entry back.
        blob = pickle.dumps(("sat", (("?0", "a"),)), protocol=4)
        node.cache_put("query", "fp-remote", blob)
        wait_until(lambda: cluster_stats(server)["cache_puts"] == 1)
        fetched = node.cache_get("query", "fp-remote")
        assert fetched is not None
        assert pickle.loads(fetched)[0] == "sat"
        stats = cluster_stats(server)
        assert stats["cache_gets"] == 1
        assert stats["cache_hits"] == 1
        # A miss is a clean None, not an error.
        assert node.cache_get("query", "absent") is None

    def test_remote_solve_populates_coordinator_store(self, tmp_path):
        server, sock = start_daemon(
            tmp_path,
            cluster=True,
            query_cache=str(tmp_path / "qc"),
        )
        start_worker(
            sock, capacity=1, worker_id="node-r", remote_cache=True
        )
        with ServeClient(socket_path=sock, timeout=30.0) as client:
            ack = client.submit(
                {"kind": "solve", "job_id": "s1", "pattern": "ab+c"}
            )
            result = client.wait_result(ack["id"])
        assert result.status == "ok"
        assert server.scheduler.stats()["remote_dispatched"] == 1
        # The node wrote its answers through to the fleet store.
        wait_until(lambda: cluster_stats(server)["cache_puts"] >= 1)


class TestNodeKillChaos:
    """The ISSUE's chaos scenario with real worker *processes*."""

    def _spawn_worker(self, sock, tmp_path, name, fault_plan=None):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--join",
            sock,
            "--capacity",
            "1",
            "--worker-id",
            name,
        ]
        if fault_plan is not None:
            plan_path = str(tmp_path / f"plan-{name}.json")
            with open(plan_path, "w") as handle:
                json.dump(fault_plan, handle)
            cmd += ["--fault-plan", plan_path]
        return subprocess.Popen(
            cmd,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )

    def test_sigkill_mid_corpus_lands_every_job_exactly_once(
        self, tmp_path
    ):
        from repro.service.report import BatchReport, format_batch_report

        server, sock = start_daemon(
            tmp_path, cluster=True, retry_max=2, retry_backoff_s=0.05
        )
        procs = [
            self._spawn_worker(sock, tmp_path, "chaos-a"),
            # SIGKILLs itself on its first assignment receipt — the
            # coordinator sees EOF, revokes, and re-dispatches.
            self._spawn_worker(
                sock,
                tmp_path,
                "chaos-b",
                fault_plan={
                    "rules": [
                        {"site": "node:kill", "action": "kill", "nth": 1}
                    ]
                },
            ),
        ]
        try:
            with ServeClient(socket_path=sock, timeout=60.0) as client:
                wait_until(
                    lambda: cluster_stats(server)["workers"] == 2,
                    timeout=30.0,
                )
                started = time.monotonic()
                specs = [
                    {
                        "kind": "solve",
                        "job_id": f"chaos-{i}",
                        "pattern": f"a{{{i + 1}}}b+c",
                    }
                    for i in range(8)
                ]
                order = {}
                for spec in specs:
                    order[client.submit(spec)["id"]] = spec["job_id"]
                results = []
                for request_id, result, _ in client.iter_results():
                    results.append(result)
                wall = time.monotonic() - started
                health = client.health()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
        assert len(results) == 8
        assert all(r.status == "ok" for r in results)
        # Exactly once: eight distinct job ids, no duplicates.
        assert sorted(r.job_id for r in results) == sorted(
            s["job_id"] for s in specs
        )
        assert sum(r.retries for r in results) >= 1
        assert health["cluster"]["deaths"] >= 1
        assert health["cluster"]["leases_revoked"] >= 1
        report = format_batch_report(
            BatchReport(
                results=results,
                wall_time=wall,
                workers=0,
                jobs_submitted=len(specs),
                jobs_executed=len(results),
            )
        )
        assert "recovery:" in report
