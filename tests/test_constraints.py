"""Unit tests for the constraint language: terms, formulas, NNF, printer."""

import pytest

from repro.constraints import (
    And,
    Concat,
    Eq,
    FALSE,
    Implies,
    InRe,
    Not,
    Or,
    StrConst,
    StrVar,
    TRUE,
    Undef,
    concat,
    conj,
    disj,
    eq_str,
    formula_size,
    fresh_var,
    implies,
    is_defined,
    is_undef,
    neg,
    to_nnf,
    variables_of,
)
from repro.constraints.printer import to_smtlib
from repro.regex import parse_regex

x, y, z = StrVar("x"), StrVar("y"), StrVar("z")


class TestTerms:
    def test_concat_flattens(self):
        term = concat(x, concat(y, z))
        assert isinstance(term, Concat) and len(term.parts) == 3

    def test_concat_folds_constants(self):
        term = concat(StrConst("a"), StrConst("b"), x)
        assert term.parts[0] == StrConst("ab")

    def test_concat_drops_empty(self):
        assert concat(StrConst(""), x) == x
        assert concat(StrConst(""), StrConst("")) == StrConst("")

    def test_plus_operator(self):
        assert (x + y) == concat(x, y)

    def test_variables_of(self):
        assert variables_of(concat(x, StrConst("k"), y)) == {x, y}
        assert variables_of(StrConst("k")) == frozenset()

    def test_fresh_vars_are_distinct(self):
        assert fresh_var("t") != fresh_var("t")


class TestSmartConstructors:
    def test_conj_flattening_and_units(self):
        assert conj([TRUE, Eq(x, y)]) == Eq(x, y)
        assert conj([FALSE, Eq(x, y)]) == FALSE
        inner = And((Eq(x, y), Eq(y, z)))
        assert len(conj([inner, Eq(x, z)]).operands) == 3

    def test_disj_flattening_and_units(self):
        assert disj([FALSE, Eq(x, y)]) == Eq(x, y)
        assert disj([TRUE, Eq(x, y)]) == TRUE

    def test_neg_involution(self):
        phi = Eq(x, y)
        assert neg(neg(phi)) == phi
        assert neg(TRUE) == FALSE

    def test_implies_shortcuts(self):
        assert implies(TRUE, Eq(x, y)) == Eq(x, y)
        assert implies(FALSE, Eq(x, y)) == TRUE

    def test_undef_helpers(self):
        assert is_undef(x) == Eq(x, Undef())
        assert is_defined(x) == Not(Eq(x, Undef()))
        assert eq_str(x, "v") == Eq(x, StrConst("v"))


class TestNNF:
    def test_pushes_negation_through_and(self):
        phi = Not(And((Eq(x, y), Eq(y, z))))
        nnf = to_nnf(phi)
        assert isinstance(nnf, Or)
        assert all(isinstance(op, Not) for op in nnf.operands)

    def test_pushes_negation_through_or(self):
        phi = Not(Or((Eq(x, y), Eq(y, z))))
        nnf = to_nnf(phi)
        assert isinstance(nnf, And)

    def test_implication_eliminated(self):
        phi = Implies(Eq(x, y), Eq(y, z))
        nnf = to_nnf(phi)
        assert isinstance(nnf, Or)

    def test_double_negation_removed(self):
        phi = Not(Not(Eq(x, y)))
        assert to_nnf(phi) == Eq(x, y)

    def test_atoms_keep_polarity(self):
        node = parse_regex("a+").body
        phi = Not(InRe(x, node))
        assert to_nnf(phi) == Not(InRe(x, node))

    def test_formula_size(self):
        assert formula_size(Eq(x, y)) == 1
        assert formula_size(And((Eq(x, y), Eq(y, z)))) == 3


class TestSmtlibPrinter:
    def test_simple_equality(self):
        script = to_smtlib(Eq(x, StrConst("ab")))
        assert '(assert (= x "ab"))' in script
        assert "(declare-const x String)" in script
        assert "(check-sat)" in script

    def test_concat(self):
        body = to_smtlib(Eq(z, concat(x, y)), declare=False)
        assert body == "(= z (str.++ x y))"

    def test_membership(self):
        node = parse_regex("ab*").body
        body = to_smtlib(InRe(x, node), declare=False)
        assert "str.in_re" in body and "re.*" in body

    def test_character_class(self):
        node = parse_regex("[a-c]").body
        body = to_smtlib(InRe(x, node), declare=False)
        assert 're.range "a" "c"' in body

    def test_undef_equality(self):
        body = to_smtlib(Eq(x, Undef()), declare=False)
        assert body == "(not x.def)"

    def test_var_var_equality_carries_definedness(self):
        body = to_smtlib(Eq(x, y), declare=False)
        assert "x.def" in body and "y.def" in body

    def test_boolean_structure(self):
        phi = implies(Eq(x, StrConst("a")), disj([Eq(y, z), FALSE]))
        body = to_smtlib(phi, declare=False)
        assert body.startswith("(=>")

    def test_string_escaping(self):
        body = to_smtlib(Eq(x, StrConst('say "hi"\n')), declare=False)
        assert '""hi""' in body and "\\u{a}" in body

    def test_quantifier_loops(self):
        node = parse_regex("a{2,4}").body
        body = to_smtlib(InRe(x, node), declare=False)
        assert "re.loop 2 4" in body

    def test_symbol_quoting(self):
        weird = StrVar("C0!7")
        body = to_smtlib(Eq(weird, StrConst("v")), declare=False)
        assert "|C0!7|" in body
