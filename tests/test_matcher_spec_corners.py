"""Spec-corner tests for the concrete matcher.

Expected values follow the ECMA-262 matching semantics (checked against
the spec's RepeatMatcher/BackreferenceMatcher pseudocode); several are
classic engine-conformance traps.  The oracle must get these right for
CEGAR to terminate with spec-correct captures.
"""

import pytest

from repro.regex import RegExp


def exec_list(source, subject, flags=""):
    result = RegExp(source, flags).exec(subject)
    return None if result is None else list(result)


class TestQuantifierCaptureInteraction:
    def test_capture_keeps_last_iteration(self):
        assert exec_list(r"(?:(a)|(b))*", "ab") == ["ab", None, "b"]

    def test_optional_iteration_resets_inner(self):
        # Spec: entering a quantifier iteration clears enclosed captures.
        assert exec_list(r"(?:(a)?b)+", "ab b".replace(" ", "")) == \
            ["abb", None]

    def test_nested_stars_with_captures(self):
        assert exec_list(r"((a)|b)*", "ba") == ["ba", "a", "a"]

    def test_empty_iteration_rejected(self):
        # (a?)* cannot loop on the empty match.
        assert exec_list(r"(a?)*b", "ab") == ["ab", "a"]

    def test_mandatory_empty_iteration_allowed(self):
        # {2} forces two iterations even when the second is empty.
        assert exec_list(r"(?:a?){2}", "a") == ["a"]

    def test_quantified_group_with_min(self):
        assert exec_list(r"(a){2,3}", "aaaa") == ["aaa", "a"]


class TestAlternationOrder:
    def test_leftmost_option_wins(self):
        assert exec_list("a|ab", "ab") == ["a"]

    def test_backtracks_into_alternation(self):
        assert exec_list("(?:a|ab)c", "abc") == ["abc"]

    def test_empty_option_matches(self):
        assert exec_list("(?:x|)y", "y") == ["y"]


class TestBackreferenceCorners:
    def test_backref_empty_capture_vs_undefined(self):
        # Group matched "" → backref matches "".
        assert exec_list(r"(a*)b\1c", "bc") == ["bc", ""]

    def test_backref_undefined_matches_empty(self):
        assert exec_list(r"(?:(x))?y\1z", "yz") == ["yz", None]

    def test_backref_inside_alternation(self):
        assert exec_list(r"(a)(?:\1|b)", "aa") == ["aa", "a"]
        assert exec_list(r"(a)(?:\1|b)", "ab") == ["ab", "a"]

    def test_backref_with_quantifier(self):
        assert exec_list(r"(ab)\1*", "ababab") == ["ababab", "ab"]

    def test_case_insensitive_backref(self):
        assert exec_list(r"(ab)\1", "abAB", "i") == ["abAB", "ab"]

    def test_octal_vs_backref_boundary(self):
        # With one group, \1 is a backref, \2 is octal (matches "\x02").
        assert RegExp(r"(a)\1").test("aa")
        assert RegExp(r"(a)\2").test("a\x02")


class TestLookaheadCorners:
    def test_lookahead_does_not_consume(self):
        assert exec_list(r"(?=a)a", "a") == ["a"]

    def test_quantified_lookahead_is_annex_b(self):
        # Annex B allows (?=a)* — it matches trivially.
        assert RegExp(r"(?=a)*b").test("b")

    def test_lookahead_capture_survives(self):
        assert exec_list(r"(?=(ab))a", "ab") == ["a", "ab"]

    def test_negative_lookahead_resets_captures(self):
        assert exec_list(r"(?!(x))y", "y") == ["y", None]

    def test_lookahead_with_backref_outside(self):
        assert exec_list(r"(?=(a+))\1b", "aab") == ["aab", "aa"]

    def test_nested_lookaheads(self):
        assert RegExp(r"(?=a(?=b))ab").test("ab")
        assert not RegExp(r"^(?=a(?=c))ab").test("ab")


class TestAnchorsAndBoundariesCorners:
    def test_dollar_before_newline_multiline(self):
        assert exec_list("a$", "a\nb", "m") == ["a"]

    def test_caret_after_cr(self):
        assert RegExp("^b", "m").test("a\rb")

    def test_boundary_with_underscores(self):
        assert not RegExp(r"\bword\b").test("_word_")
        assert RegExp(r"\bword\b").test("-word-")

    def test_consecutive_boundaries(self):
        assert RegExp(r"\b\ba\b\b").test("a")

    def test_empty_string_boundaries(self):
        assert not RegExp(r"\b").test("")
        assert RegExp(r"\B").test("")


class TestGreedyBacktracking:
    def test_classic_html_tag(self):
        assert exec_list(r"<(.*)>", "<a><b>") == ["<a><b>", "a><b"]

    def test_lazy_html_tag(self):
        assert exec_list(r"<(.*?)>", "<a><b>") == ["<a>", "a"]

    def test_backtrack_across_groups(self):
        assert exec_list(r"(\w+)(\d)", "abc12") == ["abc12", "abc1", "2"]

    def test_multiple_star_interaction(self):
        assert exec_list(r"(a*)(a*)(a*)", "aa") == ["aa", "aa", "", ""]


class TestGlobalAndStickyCorners:
    def test_global_zero_width_progress(self):
        regexp = RegExp("a*", "g")
        first = regexp.exec("baa")
        assert first[0] == "" and regexp.last_index == 0
        # JavaScript relies on the caller advancing lastIndex for
        # zero-length matches; String.prototype.match does this.
        from repro.regex.methods import match

        assert match(RegExp("a*", "g"), "baa") == ["", "aa", ""]

    def test_sticky_anchored_behaviour(self):
        regexp = RegExp("a", "y")
        assert not regexp.test("ba")
        regexp.last_index = 1
        assert regexp.test("ba")

    def test_lastindex_beyond_length(self):
        regexp = RegExp("a", "g")
        regexp.last_index = 99
        assert regexp.exec("aaa") is None
        assert regexp.last_index == 0
