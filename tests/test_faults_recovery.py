"""Chaos suite: fault injection exercising the recovery paths end to end.

Every test installs a :mod:`repro.faults` plan (cleared by the autouse
``_reset_faults`` fixture) and asserts the system *recovers* — retried
jobs succeed, poison jobs quarantine without starving their coalesced
twins, a wedged solver trips its breaker and is re-admitted by the
half-open probe, corrupt store entries are evicted and re-solved, and a
serve client survives a daemon restart.  Faults are never active by
default: with no plan installed all sites are inert.

Pool-mode tests use only built-in job kinds (monkeypatched kinds do not
cross the worker process boundary); the fault plan reaches workers via
the pool initializer, and per-process hit counters restart with each
respawned worker — which is exactly what lets a retried job succeed.
"""

import os
import socket
import stat
import textwrap
import time

import pytest

from repro import faults
from repro.automata import DfaDiskStore, dfa_for_pattern
from repro.automata.build import erase_captures
from repro.constraints import InRe, StrVar
from repro.faults import get_breaker, reset_breakers
from repro.regex import parse_regex
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeServer
from repro.service.jobs import SolveJob
from repro.service.runner import BatchRunner, RunnerConfig
from repro.solver import SolverStats, UNKNOWN, UNSAT
from repro.solver.backends import PooledSessionBackend, SessionPool
from repro.solver.backends.cached import CachedResult, QueryDiskStore

from serve_testing import _STARTED, start_daemon, stop_started, wait_until


@pytest.fixture(autouse=True)
def _serve_teardown():
    yield
    stop_started()


def membership(pattern: str, var_name: str = "x"):
    node = erase_captures(parse_regex(pattern, "").body)
    return InRe(StrVar(var_name), node)


#: Interactive fake solver: answers every check-sat with unsat (sound
#: under the guarded encoding, so the session trusts it directly).
_FAKE = textwrap.dedent(
    '''\
    #!/usr/bin/env python3
    import re, sys
    for line in sys.stdin:
        line = line.strip()
        if line == "(check-sat)":
            print("unsat", flush=True)
        elif line.startswith("(get-value"):
            print("()", flush=True)
        else:
            m = re.match(r'\\(echo "(.*)"\\)', line)
            if m:
                print(m.group(1), flush=True)
    '''
)


def fake_solver(tmp_path, name="fakechaos"):
    path = tmp_path / name
    path.write_text(_FAKE)
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


class TestWorkerKillRetry:
    def test_killed_worker_job_retries_and_succeeds(self):
        """A SIGKILLed worker costs one retry, never the batch.

        ``nth=2`` kills the worker on its second job; the respawned
        worker's fault counters restart, so the retried job lands as
        hit 1 of the fresh process and completes.
        """
        runner = BatchRunner(
            RunnerConfig(
                workers=1,
                retry_max=2,
                retry_backoff_s=0.05,
                heal_interval_s=0.05,
                fault_plan={
                    "rules": [
                        {"site": "worker:job", "action": "kill", "nth": 2}
                    ]
                },
            )
        )
        jobs = [
            SolveJob(job_id="victim-a", pattern="ab", solver_timeout=1.0),
            SolveJob(job_id="victim-b", pattern="cd", solver_timeout=1.0),
        ]
        report = runner.run(jobs)
        assert [r.status for r in report.results] == ["ok", "ok"]
        assert report.total_retries == 1
        assert report.quarantined_jobs == 0
        assert sum(r.retries for r in report.results) == 1
        spec = report.to_spec()
        assert spec["recovery"] == {"retries": 1, "quarantined": 0}

    def test_no_fault_plan_means_no_retries(self):
        runner = BatchRunner(RunnerConfig(workers=0))
        report = runner.run(
            [SolveJob(job_id="plain", pattern="ab", solver_timeout=1.0)]
        )
        assert report.results[0].status == "ok"
        assert report.total_retries == 0


class TestPoisonQuarantine:
    def test_poison_job_quarantines_without_starving_twins(self, tmp_path):
        """A job that kills every worker it touches is quarantined after
        ``quarantine_after`` kills; its coalesced twin shares the result
        (one flight, one quarantine) and healthy jobs still complete."""
        server, sock = start_daemon(
            tmp_path,
            workers=1,
            retry_max=5,
            retry_backoff_s=0.05,
            quarantine_after=2,
            heal_interval_s=0.05,
            fault_plan={
                "rules": [
                    {
                        "site": "worker:job",
                        "action": "kill",
                        "match": "poison",
                    }
                ]
            },
        )
        with ServeClient(socket_path=sock, timeout=60.0) as client:
            first = client.submit(
                {
                    "kind": "solve",
                    "job_id": "poison-a",
                    "pattern": "xy",
                    "solver_timeout": 1.0,
                }
            )
            twin = client.submit(
                {
                    "kind": "solve",
                    "job_id": "poison-b",
                    "pattern": "xy",
                    "solver_timeout": 1.0,
                }
            )
            healthy = client.submit(
                {
                    "kind": "solve",
                    "job_id": "healthy-1",
                    "pattern": "ab",
                    "solver_timeout": 1.0,
                }
            )
            assert twin["coalesced"] is True
            results = {
                request_id: result
                for request_id, result, _ in client.iter_results()
            }
            assert results[first["id"]].status == "quarantined"
            assert results[twin["id"]].status == "quarantined"
            assert "killing" in results[first["id"]].error
            assert results[first["id"]].retries == 1
            assert results[healthy["id"]].status == "ok"
            health = client.health()
        assert health["live"] is True
        assert health["quarantined"] == 1  # one flight, not one per twin
        assert health["retries"] >= 1
        assert health["runner"]["worker_crashes"] >= 2


class TestBreakerRecovery:
    def test_wedged_session_trips_breaker_then_half_open_probe_readmits(
        self, tmp_path
    ):
        cmd = fake_solver(tmp_path)
        reset_breakers()
        # Tuned thresholds must exist before the backend resolves its
        # breaker: the registry hands out the first-created instance.
        breaker = get_breaker(
            f"session:{cmd}", fail_threshold=2, cooldown_s=0.4
        )
        pool = SessionPool()
        stats = SolverStats()
        backend = PooledSessionBackend(
            cmd, timeout=0.2, stats=stats, pool=pool
        )
        faults.install(
            {
                "rules": [
                    {"site": "session:query", "action": "wedge", "count": 2}
                ]
            }
        )
        try:
            formula = membership("a+b")
            # Two wedged queries: each waits out the session timeout,
            # kills the wedged process, and feeds the breaker a failure.
            assert backend.solve(formula).status == UNKNOWN
            assert backend.solve(formula).status == UNKNOWN
            assert breaker.snapshot()["state"] == "open"
            assert backend.circuit_open is True
            # Within the cool-down every query short-circuits — no
            # session traffic, UNKNOWN with an explicit reason.
            result = backend.solve(formula)
            assert result.status == UNKNOWN
            assert "circuit open" in backend.last_error
            assert breaker.snapshot()["short_circuits"] >= 1
            time.sleep(0.45)
            assert backend.circuit_open is False  # probe traffic admitted
            # The half-open probe reaches a fresh (un-wedged: the rule's
            # fire budget is spent) session and closes the breaker.
            assert backend.solve(formula).status == UNSAT
            snapshot = breaker.snapshot()
            assert snapshot["state"] == "closed"
            assert snapshot["trips"] == 1
            tallies = stats.breaker_summary()
            assert tallies.get(f"session:{cmd}:short_circuit", 0) >= 1
            assert tallies.get(f"session:{cmd}:open", 0) == 1
        finally:
            pool.close()


class TestCorruptStoreEviction:
    def test_corrupt_query_store_entry_evicted_and_rewritable(
        self, tmp_path
    ):
        store = QueryDiskStore(str(tmp_path / "qstore"))
        store.put("fp-chaos", CachedResult("unsat", None))
        assert store.get("fp-chaos").status == "unsat"
        faults.install(
            {
                "rules": [
                    {
                        "site": "query_store:get",
                        "action": "corrupt",
                        "nth": 1,
                    }
                ]
            }
        )
        # The corrupted entry reads as a miss, is evicted, and the
        # store keeps working — a bad directory degrades to solving.
        assert store.get("fp-chaos") is None
        assert store.failures == 1
        assert not os.path.exists(store._entry("fp-chaos"))
        store.put("fp-chaos", CachedResult("unsat", None))
        assert store.get("fp-chaos").status == "unsat"

    def test_corrupt_dfa_store_entry_evicted_and_recompiled(
        self, tmp_path, clean_automata
    ):
        store = DfaDiskStore(str(tmp_path / "dstore"))
        store.put("chaosdfa", dfa_for_pattern("ab*c"))
        assert store.get("chaosdfa") is not None
        faults.install(
            {
                "rules": [
                    {
                        "site": "dfa_store:get",
                        "action": "corrupt",
                        "nth": 1,
                    }
                ]
            }
        )
        assert store.get("chaosdfa") is None
        assert store.failures == 1
        assert not os.path.exists(store._entry("chaosdfa"))
        store.put("chaosdfa", dfa_for_pattern("ab*c"))
        assert store.get("chaosdfa").accepts_word("abbc")


class TestServeRecovery:
    def test_client_survives_daemon_restart(self, tmp_path):
        server_a, sock = start_daemon(tmp_path, workers=0)
        client = ServeClient(
            socket_path=sock,
            timeout=15.0,
            reconnect=True,
            reconnect_backoff_s=0.05,
        )
        try:
            client.ping()
            server_a.stop()
            if os.path.exists(sock):
                os.unlink(sock)  # asyncio does not reap unix sockets
            runner = BatchRunner(RunnerConfig(workers=0))
            server_b = ServeServer(
                runner, ServeConfig(socket=sock)
            ).start_background()
            _STARTED.append(server_b)
            # The first request on the dead connection redials with
            # backoff and retries — callers never see the restart.
            client.ping()
            ack = client.submit(
                {
                    "kind": "solve",
                    "job_id": "after-restart",
                    "pattern": "ab",
                    "solver_timeout": 1.0,
                }
            )
            assert client.wait_result(ack["id"]).status == "ok"
        finally:
            client.close()

    def test_reconnect_gives_up_after_bounded_attempts(self, tmp_path):
        server, sock = start_daemon(tmp_path, workers=0)
        client = ServeClient(
            socket_path=sock,
            timeout=5.0,
            reconnect=True,
            reconnect_attempts=2,
            reconnect_backoff_s=0.01,
        )
        try:
            client.ping()  # ensure the daemon accepted this connection
            server.stop()
            if os.path.exists(sock):
                os.unlink(sock)  # nothing will ever listen here again
            with pytest.raises(ConnectionError):
                client.ping()
        finally:
            client.close()

    def test_dropped_frame_times_out_then_recovers(self, tmp_path):
        """A dropped response frame surfaces as a read timeout (the
        connection is alive — auto-reconnect must NOT eat it); the
        connection's read stream is poisoned past a timeout, so the
        caller redials explicitly and the next request goes through
        once the rule's fire budget is spent."""
        server, sock = start_daemon(tmp_path, workers=0)
        client = ServeClient(socket_path=sock, timeout=0.5, reconnect=True)
        try:
            faults.install(
                {
                    "rules": [
                        {
                            "site": "serve:frame",
                            "action": "drop",
                            "match": "pong",
                            "count": 1,
                        }
                    ]
                }
            )
            with pytest.raises(socket.timeout):
                client.ping()
            client.reconnect()
            client.ping()  # rule exhausted: the daemon answers again
        finally:
            client.close()

    def test_delayed_frame_still_delivered(self, tmp_path):
        server, sock = start_daemon(tmp_path, workers=0)
        client = ServeClient(socket_path=sock, timeout=15.0)
        try:
            faults.install(
                {
                    "rules": [
                        {
                            "site": "serve:frame",
                            "action": "delay",
                            "match": "pong",
                            "delay_s": 0.15,
                            "count": 1,
                        }
                    ]
                }
            )
            started = time.monotonic()
            client.ping()
            assert time.monotonic() - started >= 0.1
        finally:
            client.close()

    def test_health_op_reports_ready_daemon(self, tmp_path):
        server, sock = start_daemon(tmp_path, workers=0)
        with ServeClient(socket_path=sock, timeout=15.0) as client:
            health = client.health()
        assert health["live"] is True
        assert health["ready"] is True
        assert health["draining"] is False
        assert health["runner"]["mode"] == "inline"
        assert "breakers" in health
        assert "faults" not in health  # only reported when a plan is live
