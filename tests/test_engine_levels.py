"""Differential tests across the four regex support levels (§7.3).

These encode the *reasons* each Table 7 row exists: specific program
shapes that each level unlocks.
"""

import pytest

from repro.dse import RegexSupportLevel, analyze

LEVELS = [
    RegexSupportLevel.CONCRETE,
    RegexSupportLevel.MODEL,
    RegexSupportLevel.CAPTURES,
    RegexSupportLevel.REFINED,
]


def coverage_at(source, level, max_tests=15, time_budget=20):
    return analyze(
        source, level=level, max_tests=max_tests, time_budget=time_budget
    ).coverage


class TestModelingUnlocksMatchBranches:
    SOURCE = r"""
    var s = symbol("s", "nope");
    if (/^magic-\d+$/.test(s)) {
        var inside = 1;
    } else {
        var outside = 2;
    }
    """

    def test_concrete_stuck_on_one_branch(self):
        assert coverage_at(self.SOURCE, RegexSupportLevel.CONCRETE) < 1.0

    def test_model_covers_both(self):
        assert coverage_at(self.SOURCE, RegexSupportLevel.MODEL) == 1.0


class TestCapturesUnlockCaptureBranches:
    SOURCE = r"""
    var s = symbol("s", "nope");
    var m = /^cmd:(\w+)$/.exec(s);
    if (m) {
        if (m[1] === "stop") {
            var stopping = 1;
        }
    }
    """

    def test_model_reaches_match_only(self):
        coverage = coverage_at(self.SOURCE, RegexSupportLevel.MODEL)
        assert coverage < 1.0

    def test_captures_reach_the_guarded_branch(self):
        assert coverage_at(self.SOURCE, RegexSupportLevel.CAPTURES) == 1.0


class TestRefinementUnlocksPrecedenceBranches:
    # §4.4 overapproximation trap: the raw negation model proposes
    # doubled words as non-members of /(\w)\1/ over t = s ++ s.
    SOURCE = r"""
    var s = symbol("s", "q");
    if (s !== "") {
        var t = s + s;
        if (/([a-z])\1/.test(t)) {
            var doubled = 1;
        } else {
            var clean = 2;
        }
    }
    """

    def test_captures_level_misses_else_branch(self):
        assert coverage_at(self.SOURCE, RegexSupportLevel.CAPTURES) < 1.0

    def test_refined_level_covers_everything(self):
        assert coverage_at(self.SOURCE, RegexSupportLevel.REFINED) == 1.0


class TestLevelMonotonicity:
    """Coverage must never *drop* as support increases, across a mix of
    program shapes (the foundation of Table 7's cumulative design)."""

    PROGRAMS = [
        r"""
        var a = symbol("a", "");
        if (/\d/.test(a)) { 1; } else { 2; }
        """,
        r"""
        var b = symbol("b", "");
        var m = /(x+)(y+)/.exec(b);
        if (m) { if (m[1] === "xx") { 1; } }
        """,
        r"""
        var c = symbol("c", "z");
        if (c === "k") { if (/^k$/.test(c)) { 1; } }
        """,
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_monotone(self, source):
        coverages = [coverage_at(source, level) for level in LEVELS]
        for lower, higher in zip(coverages, coverages[1:]):
            assert higher >= lower - 1e-9, coverages
