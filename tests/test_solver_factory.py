"""Tests for the solver_factory hooks and solver hoisting (service seam)."""

from repro.dse.engine import DseEngine, EngineConfig, analyze
from repro.dse.interpreter import RegexSupportLevel
from repro.model.cegar import CegarSolver
from repro.service import CachedSolver, QueryCache
from repro.solver import Solver

PROGRAM = (
    'var s = symbol("s", "");\n'
    'var m = /^(a+)=(b+)$/.exec(s);\n'
    'if (m) { if (m[1] === "aa") { 1; } else { 2; } } else { 3; }\n'
)


class _CountingFactory:
    def __init__(self):
        self.calls = 0
        self.solvers = []

    def __call__(self, timeout):
        self.calls += 1
        solver = Solver(timeout=timeout)
        self.solvers.append(solver)
        return solver


class TestEngineHoisting:
    def test_factory_called_once_per_engine(self):
        factory = _CountingFactory()
        engine = DseEngine(
            PROGRAM,
            EngineConfig(max_tests=6, time_budget=5.0),
            solver_factory=factory,
        )
        engine.run()
        assert factory.calls == 1
        assert factory.solvers[0].timeout == engine.config.solver_timeout
        assert engine._base_solver is factory.solvers[0]
        assert engine._cegar.solver is factory.solvers[0]

    def test_lower_levels_share_the_hoisted_solver(self):
        factory = _CountingFactory()
        engine = DseEngine(
            PROGRAM,
            EngineConfig(
                level=RegexSupportLevel.MODEL, max_tests=6, time_budget=5.0
            ),
            solver_factory=factory,
        )
        result = engine.run()
        assert factory.calls == 1
        assert result.tests_run >= 1

    def test_default_behaviour_unchanged(self):
        result = analyze(PROGRAM, max_tests=6, time_budget=5.0)
        assert result.tests_run >= 1
        assert result.coverage > 0

    def test_cached_factory_reports_into_stats(self):
        cache = QueryCache()
        result = analyze(
            PROGRAM,
            max_tests=6,
            time_budget=5.0,
            solver_factory=lambda timeout: CachedSolver(
                Solver(timeout=timeout), cache=cache
            ),
        )
        stats = result.stats.cache_summary()
        assert stats["lookups"] == cache.hits + cache.misses
        assert stats["misses"] >= 1


class TestCegarFactoryHook:
    def test_factory_overrides_solver(self):
        cache = QueryCache()
        cegar = CegarSolver(
            solver_factory=lambda: CachedSolver(Solver(), cache=cache)
        )
        assert isinstance(cegar.solver, CachedSolver)
        assert cegar.solver.cache is cache

    def test_without_factory_keeps_given_solver(self):
        solver = Solver(timeout=1.0)
        assert CegarSolver(solver=solver).solver is solver
