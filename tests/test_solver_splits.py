"""Focused tests for the solver's split-constraint machinery.

Split constraints are how several partitions of the same word coexist —
the backbone of multi-regex path conditions and CEGAR word-pinning.
"""

import pytest

from repro.constraints import (
    Eq,
    InRe,
    Not,
    StrConst,
    StrVar,
    concat,
    conj,
)
from repro.regex import parse_regex
from repro.solver import SAT, Solver, UNKNOWN, UNSAT

a, b, c, d, w, x, y, z = (StrVar(n) for n in "abcdwxyz")


def rn(source):
    return parse_regex(source).body


class TestDoublePartition:
    def test_two_partitions_of_same_word(self):
        formula = conj(
            [
                Eq(w, concat(a, b)),
                InRe(a, rn("x+")),
                InRe(b, rn("y+")),
                Eq(w, concat(c, d)),
                InRe(c, rn("x")),
                InRe(d, rn(".+")),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        model = result.model
        assert model[w] == model[a] + model[b] == model[c] + model[d]
        assert model[c] == "x"

    def test_partitions_with_conflicting_structure(self):
        formula = conj(
            [
                Eq(w, concat(a, b)),
                InRe(a, rn("x{2}")),
                InRe(b, rn("y{2}")),
                Eq(w, concat(c, d)),
                InRe(c, rn("x{3}")),
                InRe(d, rn("y+")),
            ]
        )
        # w = xxyy cannot start with xxx.
        assert Solver().solve(formula).status in (UNSAT, UNKNOWN)

    def test_constant_target_split(self):
        formula = conj(
            [
                Eq(w, StrConst("key=value")),
                Eq(w, concat(x, StrConst("="), y)),
                InRe(x, rn(r"\w+")),
                InRe(y, rn(r"\w+")),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        assert result.model[x] == "key" and result.model[y] == "value"

    def test_ambiguous_split_backtracks_through_checks(self):
        # "aaa" split as x ++ y with x nonempty and y = "a": x = "aa".
        formula = conj(
            [
                Eq(w, StrConst("aaa")),
                Eq(w, concat(x, y)),
                InRe(x, rn("a+")),
                Eq(y, StrConst("a")),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT and result.model[x] == "aa"


class TestConcatEqConcat:
    def test_bridged_word_equation(self):
        # concat ~ concat with shared variables on both sides.
        formula = conj(
            [
                Eq(concat(x, StrConst("b")), concat(StrConst("a"), y)),
                InRe(x, rn("a")),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        assert result.model[x] == "a" and result.model[y] == "b"

    def test_doubling_equation(self):
        # t = s ++ s and t = "abab" forces s = "ab".
        formula = conj(
            [
                Eq(concat(x, x), StrConst("abab")),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        assert result.model[x] == "ab"

    def test_doubling_odd_length_unsat(self):
        formula = conj([Eq(concat(x, x), StrConst("aba"))])
        assert Solver().solve(formula).status in (UNSAT, UNKNOWN)

    def test_repeated_variable_consistency_in_split(self):
        # w = x ++ y ++ x with w = "abcab": x must be "ab", y = "c".
        formula = conj(
            [
                Eq(w, StrConst("abcab")),
                Eq(w, concat(x, y, x)),
                Not(Eq(x, StrConst(""))),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        assert result.model[x] == "ab" and result.model[y] == "c"


class TestSplitWithDefinitionsChained:
    def test_split_part_with_own_definition(self):
        # w is defined; its split part y is itself a concatenation.
        formula = conj(
            [
                Eq(w, StrConst("xy-z")),
                Eq(w, concat(x, z)),
                Eq(x, concat(a, b)),
                InRe(a, rn("x")),
                InRe(b, rn("y")),
                Eq(z, StrConst("-z")),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        assert result.model[a] == "x" and result.model[b] == "y"

    def test_deferred_classes_not_enumerated(self):
        # A split part with a huge language must not be brute-forced:
        # the split pins it directly.
        formula = conj(
            [
                Eq(w, StrConst("kilimanjaro")),
                Eq(w, concat(x, y)),
                InRe(x, rn("[a-z]{4}")),
                InRe(y, rn("[a-z]+")),
            ]
        )
        result = Solver(combo_budget=500).solve(formula)
        assert result.status == SAT
        assert result.model[x] == "kili"

    def test_exclusions_respected_in_splits(self):
        formula = conj(
            [
                Eq(w, StrConst("ab")),
                Eq(w, concat(x, y)),
                Not(Eq(x, StrConst(""))),
                Not(Eq(x, StrConst("a"))),
            ]
        )
        result = Solver().solve(formula)
        assert result.status == SAT
        assert result.model[x] == "ab" and result.model[y] == ""
