"""Shared harness for the serve-daemon tests.

The daemon under test runs *in process* (background thread, inline
``workers=0`` runner) so tests can register extra job kinds in
``repro.service.jobs._JOB_KINDS`` and control job timing with plain
``threading.Event``\\ s — the jobs execute on the runner's inline
executor thread of the same interpreter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.serve.server import ServeConfig, ServeServer
from repro.service.jobs import _JobBase
from repro.service.runner import BatchRunner, RunnerConfig

#: Gates ``GateJob``\\ s wait on, keyed by token (test-managed).
GATES: Dict[str, threading.Event] = {}

#: Execution order of ``RecordJob``\\ s (fairness assertions).
RECORD: list = []

#: Daemons brought up by :func:`start_daemon`, stopped by the tests'
#: autouse teardown fixture so no background loop outlives its test.
_STARTED: list = []


def open_gate(token: str) -> None:
    GATES.setdefault(token, threading.Event()).set()


def reset_gates() -> None:
    for event in GATES.values():
        event.set()  # unblock any straggler before forgetting it
    GATES.clear()
    del RECORD[:]


def stop_started() -> None:
    while _STARTED:
        _STARTED.pop().stop()


@dataclass
class GateJob(_JobBase):
    """A job that blocks until its gate opens (deterministic timing).

    ``key`` feeds ``dedup_key`` so tests control which jobs coalesce;
    ``None`` never coalesces.  Registered into ``_JOB_KINDS`` by the
    tests (monkeypatch), which works because the in-process daemon's
    inline runner executes jobs in this interpreter.
    """

    gate: str = ""
    key: Optional[str] = None
    payload_note: str = ""

    KIND = "gate"

    def dedup_key(self) -> Optional[str]:
        return f"gate|{self.key}" if self.key else None

    def _run(self, solver_factory) -> dict:
        if self.gate:
            event = GATES.setdefault(self.gate, threading.Event())
            if not event.wait(timeout=30.0):
                raise TimeoutError(f"gate {self.gate!r} never opened")
        return {"note": self.payload_note, "gate": self.gate}


@dataclass
class RecordJob(_JobBase):
    """Appends its note to ``RECORD`` — executions are serialized when
    ``max_inflight == 1``, so ``RECORD`` *is* the dispatch order."""

    note: str = ""

    KIND = "record"

    def _run(self, solver_factory) -> dict:
        RECORD.append(self.note)
        return {"note": self.note}


def start_daemon(
    tmp_path,
    workers: int = 0,
    max_queue: int = 128,
    max_inflight: Optional[int] = None,
    single_flight: bool = True,
    max_frame_bytes: Optional[int] = None,
    cluster: bool = False,
    heartbeat_s: float = 0.2,
    heartbeat_miss: int = 3,
    **runner_kwargs,
):
    """An in-process daemon on a fresh unix socket; returns (server, path).

    ``cluster=True`` enables coordinator mode with a test-friendly fast
    heartbeat (0.2s) so dead-node detection fits inside test timeouts.
    """
    sock = str(tmp_path / f"serve-{time.monotonic_ns()}.sock")
    config = ServeConfig(
        socket=sock,
        max_queue=max_queue,
        max_inflight=max_inflight,
        single_flight=single_flight,
        cluster=cluster,
        heartbeat_s=heartbeat_s,
        heartbeat_miss=heartbeat_miss,
    )
    if max_frame_bytes is not None:
        config.max_frame_bytes = max_frame_bytes
    if workers == 0 and max_inflight:
        # Inline daemons overlap jobs on executor threads; give the
        # runner enough of them to honor the requested concurrency.
        runner_kwargs.setdefault("inline_concurrency", max_inflight)
    runner = BatchRunner(RunnerConfig(workers=workers, **runner_kwargs))
    server = ServeServer(runner, config).start_background()
    _STARTED.append(server)
    return server, sock


class _NodeHarness:
    """One in-process worker node on a daemon thread (tests only)."""

    def __init__(self, node, thread):
        self.node = node
        self.thread = thread

    def stop(self, timeout: float = 10.0) -> None:
        self.node.stop()
        self.thread.join(timeout=timeout)


def start_worker(
    join: str,
    capacity: int = 1,
    worker_id: Optional[str] = None,
    remote_cache: bool = False,
    reconnect_attempts: Optional[int] = 3,
    **runner_kwargs,
):
    """An in-process cluster worker node joined to ``join``.

    The node runs on a daemon thread with an inline runner sized to
    ``capacity`` (same-interpreter execution, so ``GateJob`` gates and
    monkeypatched job kinds work on the remote side too).  Registered
    into ``_STARTED`` so the autouse teardown reaps it.
    """
    from repro.cluster.worker import WorkerConfig, WorkerNode

    runner_kwargs.setdefault("inline_concurrency", capacity)
    runner = BatchRunner(RunnerConfig(workers=0, **runner_kwargs))
    node = WorkerNode(
        runner,
        WorkerConfig(
            join=join,
            capacity=capacity,
            worker_id=worker_id,
            remote_cache=remote_cache,
            reconnect_attempts=reconnect_attempts,
            reconnect_backoff_s=0.05,
        ),
    )
    thread = threading.Thread(
        target=node.run, name="repro-test-worker", daemon=True
    )
    thread.start()
    harness = _NodeHarness(node, thread)
    _STARTED.append(harness)
    if not node.connected.wait(timeout=10.0):
        raise AssertionError(f"worker never registered with {join}")
    return harness


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01):
    """Poll ``predicate`` until truthy (returns its value) or fail."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")
