"""Tests for batch report merging and rendering."""

import random

from repro.service import (
    BatchReport,
    BatchRunner,
    JobResult,
    SurveyJob,
    format_backend_table,
    format_batch_report,
    merge_analyze,
    merge_backend_tallies,
    merge_solve,
    merge_survey,
)


def analyze_result(job_id, covered, statements, **over):
    payload = {
        "name": job_id,
        "covered": covered,
        "statement_count": statements,
        "coverage": covered / statements,
        "tests_run": 5,
        "queries": 10,
        "sat_queries": 8,
        "regex_ops": 3,
        "concretizations": 0,
        "wall_time": 1.0,
        "failures": [],
        "solver_queries": 10,
        "solver_seconds": 0.5,
        "refined_queries": 2,
        "sum_refinements": 6,
    }
    payload.update(over)
    return JobResult(job_id=job_id, kind="analyze", status="ok", payload=payload)


class TestMergeAnalyze:
    def test_corpus_level_aggregates(self):
        merged = merge_analyze(
            [
                analyze_result("a", 6, 10),
                analyze_result("b", 10, 10),
                JobResult(job_id="c", kind="analyze", status="error"),
            ]
        )
        assert merged["packages"] == 3
        assert merged["analyzed"] == 2
        assert merged["failed_jobs"] == 1
        assert merged["coverage"] == 16 / 20
        assert merged["queries"] == 20
        assert merged["mean_refinements"] == 3.0

    def test_empty(self):
        merged = merge_analyze([])
        assert merged["coverage"] == 0.0
        assert merged["packages"] == 0


class TestMergeSolve:
    def test_counts(self):
        results = [
            JobResult(
                job_id="a", kind="solve", status="ok",
                payload={"found": True, "solver_queries": 2,
                         "solver_seconds": 0.1},
            ),
            JobResult(
                job_id="b", kind="solve", status="ok",
                payload={"found": False, "solver_queries": 1,
                         "solver_seconds": 0.2},
            ),
            JobResult(job_id="c", kind="solve", status="timeout"),
        ]
        merged = merge_solve(results)
        assert merged["solved"] == 1
        assert merged["unsolved"] == 1
        assert merged["failed_jobs"] == 1
        assert merged["solver_queries"] == 3


class TestMergeBackendTallies:
    def _result(self, job_id, tallies, status="ok"):
        return JobResult(
            job_id=job_id, kind="solve", status=status,
            payload={"backend_tallies": tallies},
        )

    def test_per_backend_sums_across_jobs(self):
        tally = {
            "queries": 3, "sat": 2, "unsat": 1, "unknown": 0,
            "errors": 0, "seconds": 0.5, "definitive_rate": 1.0,
        }
        other = {
            "queries": 1, "sat": 0, "unsat": 0, "unknown": 1,
            "errors": 0, "seconds": 0.2, "definitive_rate": 0.0,
        }
        merged = merge_backend_tallies(
            [
                self._result("a", {"native": tally}),
                self._result("b", {"native": tally, "smtlib:z3": other}),
                self._result("c", {"native": tally}, status="error"),
            ]
        )
        assert merged["native"]["queries"] == 6
        assert merged["native"]["sat"] == 4
        assert merged["native"]["definitive_rate"] == 1.0
        assert merged["smtlib:z3"]["unknown"] == 1
        assert merged["smtlib:z3"]["definitive_rate"] == 0.0

    def test_jobs_without_tallies_are_fine(self):
        assert merge_backend_tallies(
            [JobResult(job_id="a", kind="survey", status="ok")]
        ) == {}

    def test_table_has_one_row_per_backend(self):
        merged = merge_backend_tallies(
            [
                self._result(
                    "a",
                    {
                        "native": {
                            "queries": 2, "sat": 1, "unsat": 1,
                            "unknown": 0, "errors": 0, "seconds": 0.1,
                        }
                    },
                )
            ]
        )
        table = format_backend_table(merged)
        assert "Backend" in table and "Defin.%" in table
        assert "native" in table
        assert "100.0" in table


class TestMergeSurvey:
    def test_cross_shard_unique_dedup(self):
        # The same literal in two shards must count once in uniques.
        shard_a = SurveyJob(
            job_id="v0", package_files=[["var a = /x(y)/;"]]
        ).run()
        shard_b = SurveyJob(
            job_id="v1",
            package_files=[["var b = /x(y)/; var c = /\\d+/;"]],
        ).run()
        merged = merge_survey([shard_a, shard_b])
        assert merged.n_packages == 2
        assert merged.total_regexes == 3
        assert merged.unique_regexes == 2
        assert merged.feature_uniques["capture_groups"] == 1


class TestBatchReport:
    def test_cache_totals_and_statuses(self):
        report = BatchReport(
            results=[
                JobResult(
                    job_id="a", kind="solve", status="ok",
                    cache_hits=2, cache_misses=3,
                ),
                JobResult(job_id="b", kind="solve", status="error"),
            ],
            wall_time=30.0,
            workers=2,
        )
        assert report.cache_hits == 2
        assert report.cache_misses == 3
        assert report.cache_hit_rate == 0.4
        assert report.jobs_per_minute == 4.0
        assert report.by_status() == {"ok": 1, "error": 1}
        spec = report.to_spec()
        assert spec["cache"]["hits"] == 2
        assert len(spec["results"]) == 2

    def test_format_full_report(self):
        jobs = [
            SurveyJob(job_id="v0", package_files=[["var a = /q(r)/;"]]),
        ]
        report = BatchRunner(workers=0).run(jobs)
        text = format_batch_report(report)
        assert "jobs:" in text
        assert "query cache:" in text
        assert "Total Regex" in text  # table 5 section

    def test_report_is_order_independent(self):
        """Streamed (as-completed) result order must not change a report.

        The serve daemon delivers results in completion order; the same
        result set arriving in any permutation has to render the exact
        same bytes — including float aggregates, whose summation order
        would otherwise drift in the last bits.
        """
        results = [
            analyze_result(
                f"a{i}", 5 + i, 10,
                solver_seconds=0.1 * (10 ** (i % 5)) + 1e-9,
                wall_time=0.3 * (7 ** (i % 3)),
            )
            for i in range(8)
        ]
        results += [
            JobResult(
                job_id=f"s{i}", kind="solve", status="ok",
                payload={
                    "found": i % 2 == 0,
                    "solver_queries": i,
                    "solver_seconds": 0.01 * (3 ** i) + 1e-10,
                    "backend_tallies": {
                        "native": {
                            "queries": i, "sat": i, "unsat": 0,
                            "unknown": 0, "errors": 0,
                            "seconds": 0.001 * (5 ** (i % 4)),
                        }
                    },
                },
            )
            for i in range(6)
        ]
        results.append(
            JobResult(
                job_id="bad", kind="solve", status="error",
                error="Boom\nlast line",
            )
        )

        def render(ordering):
            return format_batch_report(
                BatchReport(results=list(ordering), wall_time=2.0, workers=2)
            )

        reference = render(results)
        rng = random.Random(1909)
        for _ in range(5):
            shuffled = list(results)
            rng.shuffle(shuffled)
            assert render(shuffled) == reference

    def test_of_kind_is_canonically_ordered(self):
        report = BatchReport(
            results=[
                JobResult(job_id="s2", kind="solve", status="ok"),
                JobResult(job_id="s0", kind="solve", status="ok"),
                JobResult(job_id="a0", kind="analyze", status="ok"),
                JobResult(job_id="s1", kind="solve", status="ok"),
            ]
        )
        assert [r.job_id for r in report.of_kind("solve")] == [
            "s0", "s1", "s2",
        ]

    def test_format_lists_failed_jobs(self):
        report = BatchReport(
            results=[
                JobResult(
                    job_id="bad", kind="analyze", status="error",
                    error="Boom\nlast line",
                )
            ],
            wall_time=1.0,
            workers=1,
        )
        text = format_batch_report(report)
        assert "Failed jobs" in text
        assert "bad [error]: last line" in text
