"""Integration tests for the DSE engine (generational search + CEGAR)."""

import pytest

from repro.dse import (
    DseEngine,
    EngineConfig,
    RegexSupportLevel,
    analyze,
    build_harness,
    discover_exports,
)

LISTING1 = r"""
var timeout = '500';
var arg = symbol("arg0", "foo");
var parts = /<(\w+)>([0-9]*)<\/\1>/.exec(arg);
if (parts) {
  if (parts[1] === "timeout") {
    timeout = parts[2];
  }
}
assert(/^[0-9]+$/.test(timeout) === true, "timeout must be numeric");
"""


class TestListingOne:
    """The paper's running example (§3.2) end to end."""

    def test_finds_the_bug(self):
        result = analyze(LISTING1, max_tests=25, time_budget=60)
        assert result.failures, "the empty-number bug must be found"
        assert "timeout must be numeric" in result.failures[0]

    def test_full_coverage(self):
        result = analyze(LISTING1, max_tests=25, time_budget=60)
        assert result.coverage == 1.0

    def test_concrete_level_misses_the_bug(self):
        result = analyze(
            LISTING1,
            level=RegexSupportLevel.CONCRETE,
            max_tests=25,
            time_budget=30,
        )
        assert not result.failures
        assert result.coverage < 1.0


class TestBranchExploration:
    def test_string_equality_flip(self):
        source = """
        var s = symbol("s", "");
        if (s === "magic") { assert(false, "reached"); }
        """
        result = analyze(source, max_tests=10, time_budget=30)
        assert result.failures

    def test_nested_string_branches(self):
        source = """
        var s = symbol("s", "");
        var t = symbol("t", "");
        if (s === "a") { if (t === "b") { assert(false, "deep"); } }
        """
        result = analyze(source, max_tests=15, time_budget=30)
        assert result.failures

    def test_regex_guard_then_capture_guard(self):
        source = r"""
        var s = symbol("s", "");
        var m = /^(\w+):(\d+)$/.exec(s);
        if (m) {
            if (m[1] === "port") { assert(false, "port found"); }
        }
        """
        result = analyze(source, max_tests=25, time_budget=60)
        assert result.failures

    def test_negative_regex_branch(self):
        source = r"""
        var s = symbol("s", "12345");
        if (/^\d+$/.test(s)) { 1; } else { assert(false, "non-digit"); }
        """
        result = analyze(source, max_tests=10, time_budget=30)
        assert result.failures

    def test_concat_through_regex(self):
        source = r"""
        var s = symbol("s", "");
        var wrapped = "[" + s + "]";
        if (/^\[\d+\]$/.test(wrapped)) { assert(false, "numeric payload"); }
        """
        result = analyze(source, max_tests=15, time_budget=30)
        assert result.failures


class TestSupportLevels:
    SOURCE = r"""
    var s = symbol("s", "x");
    var m = /key=(\w+)/.exec(s);
    if (m) {
        if (m[1] === "open") { assert(false, "capture-dependent"); }
    }
    """

    def test_captures_level_reaches_capture_branch(self):
        result = analyze(
            self.SOURCE,
            level=RegexSupportLevel.REFINED,
            max_tests=25,
            time_budget=60,
        )
        assert result.failures

    def test_model_level_covers_match_branch_only(self):
        result = analyze(
            self.SOURCE,
            level=RegexSupportLevel.MODEL,
            max_tests=25,
            time_budget=30,
        )
        # The match branch is reachable; the capture-dependent branch
        # requires symbolic captures.
        assert not result.failures
        assert result.coverage > 0.5

    def test_coverage_monotone_in_support_level(self):
        coverages = {}
        for level in (
            RegexSupportLevel.CONCRETE,
            RegexSupportLevel.MODEL,
            RegexSupportLevel.REFINED,
        ):
            res = analyze(
                self.SOURCE, level=level, max_tests=25, time_budget=30
            )
            coverages[level] = res.coverage
        assert (
            coverages[RegexSupportLevel.CONCRETE]
            <= coverages[RegexSupportLevel.MODEL]
            <= coverages[RegexSupportLevel.REFINED]
        )


class TestEngineMechanics:
    def test_deduplicates_inputs(self):
        source = """
        var s = symbol("s", "");
        if (s === "x") { 1; } else { 2; }
        """
        result = analyze(source, max_tests=50, time_budget=20)
        assert result.tests_run <= 4

    def test_respects_max_tests(self):
        source = """
        var s = symbol("s", "");
        if (s === "a") { 1; }
        if (s === "ab") { 1; }
        if (s === "abc") { 1; }
        """
        result = analyze(source, max_tests=3, time_budget=30)
        assert result.tests_run <= 3

    def test_stats_populated(self):
        result = analyze(LISTING1, max_tests=10, time_budget=30)
        assert result.queries > 0
        assert len(result.stats.queries) > 0


class TestHarness:
    LIBRARY = r"""
    function parseKv(s) {
        var m = /^(\w+)=(\w+)$/.exec(s);
        if (m) { return m[1]; }
        return null;
    }
    function shout(s) { return s + "!"; }
    module.exports = {parseKv: parseKv, shout: shout};
    """

    def test_discover_exports(self):
        exports = dict(discover_exports(self.LIBRARY))
        assert exports == {"parseKv": 1, "shout": 1}

    def test_harness_drives_exports(self):
        harnessed = build_harness(self.LIBRARY)
        assert "parseKv" in harnessed and "symbol(" in harnessed
        result = analyze(harnessed, max_tests=20, time_budget=30)
        assert result.regex_ops > 0
        assert result.coverage > 0.7

    def test_single_function_export(self):
        source = """
        module.exports = function (x) { return x === "k"; };
        """
        exports = discover_exports(source)
        assert exports == [("", 1)]
