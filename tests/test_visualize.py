"""Tests for DOT export and automaton quotients."""

from repro.automata import dfa_for_pattern, nfa_for
from repro.automata.visualize import label_of, to_dot
from repro.regex import parse_regex
from repro.regex.charclass import CharSet, DIGIT


class TestQuotients:
    def test_left_quotient(self):
        d = dfa_for_pattern("abc").quotient_left("ab")
        assert d.accepts_word("c")
        assert not d.accepts_word("abc")

    def test_right_quotient(self):
        d = dfa_for_pattern("abc").quotient_right("bc")
        assert d.accepts_word("a")
        assert not d.accepts_word("abc")

    def test_quotient_of_star(self):
        d = dfa_for_pattern("a*b").quotient_right("b")
        for word in ("", "a", "aaa"):
            assert d.accepts_word(word)
        assert not d.accepts_word("b")

    def test_empty_quotient(self):
        d = dfa_for_pattern("ab").quotient_left("x")
        assert d.is_empty()

    def test_quotient_identity(self):
        d = dfa_for_pattern("a+")
        q = d.quotient_left("").quotient_right("")
        for word in ("", "a", "aa", "b"):
            assert d.accepts_word(word) == q.accepts_word(word)


class TestDotExport:
    def test_dfa_dot(self):
        dot = to_dot(dfa_for_pattern("ab|c"))
        assert dot.startswith("digraph")
        assert "doublecircle" in dot
        assert "->" in dot and dot.endswith("}")

    def test_nfa_dot_has_epsilons(self):
        nfa = nfa_for(parse_regex("a|b").body)
        dot = to_dot(nfa)
        assert "ε" in dot and "dashed" in dot

    def test_labels(self):
        assert label_of(CharSet.any()) == "Σ"
        assert label_of(DIGIT) == "[0-9]"
        assert "a" in label_of(CharSet.of("a"))
        assert "…" in label_of(
            CharSet.of_intervals([(i * 10, i * 10 + 1) for i in range(10)])
        )
