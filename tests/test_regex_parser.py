"""Unit tests for the ES6 pattern parser."""

import pytest

from repro.regex import ast
from repro.regex.charclass import CharSet, DIGIT, DOT, WORD
from repro.regex.errors import RegexSyntaxError, UnsupportedRegexError
from repro.regex.parser import count_capture_groups, parse_pattern


def body(src, flags=""):
    from repro.regex.flags import Flags
    return parse_pattern(src, Flags.parse(flags)).body


class TestGroupCounting:
    @pytest.mark.parametrize(
        "pattern,count",
        [
            ("abc", 0),
            ("(a)(b)", 2),
            ("(?:a)(b)", 1),
            ("(?=x)(a)", 1),
            (r"(a|((b)*c)*d)", 3),
            (r"[()]", 0),
            (r"\((a)", 1),
            (r"((((((((((a))))))))))", 10),
        ],
    )
    def test_count(self, pattern, count):
        assert count_capture_groups(pattern) == count
        assert parse_pattern(pattern).group_count == count


class TestBasicStructure:
    def test_single_char(self):
        node = body("a")
        assert isinstance(node, ast.CharMatch)
        assert node.charset == CharSet.of("a")

    def test_concat(self):
        node = body("ab")
        assert isinstance(node, ast.Concat) and len(node.parts) == 2

    def test_alternation_order_preserved(self):
        node = body("a|b|c")
        assert isinstance(node, ast.Alternation)
        assert [n.source for n in node.options] == ["a", "b", "c"]

    def test_empty_alternative(self):
        node = body("a|")
        assert isinstance(node.options[1], ast.Empty)

    def test_empty_pattern(self):
        assert isinstance(body(""), ast.Empty)

    def test_dot(self):
        assert body(".").charset == DOT


class TestQuantifiers:
    @pytest.mark.parametrize(
        "src,low,high,lazy",
        [
            ("a*", 0, None, False),
            ("a+", 1, None, False),
            ("a?", 0, 1, False),
            ("a*?", 0, None, True),
            ("a+?", 1, None, True),
            ("a??", 0, 1, True),
            ("a{3}", 3, 3, False),
            ("a{2,}", 2, None, False),
            ("a{2,5}", 2, 5, False),
            ("a{2,5}?", 2, 5, True),
        ],
    )
    def test_forms(self, src, low, high, lazy):
        node = body(src)
        assert isinstance(node, ast.Quantifier)
        assert (node.min, node.max, node.lazy) == (low, high, lazy)

    def test_literal_brace_when_not_quantifier(self):
        node = body("a{,3}")
        assert isinstance(node, ast.Concat)
        assert node.parts[1].charset == CharSet.of("{")

    def test_out_of_order_bounds_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("a{5,2}")

    def test_nothing_to_repeat(self):
        for src in ("*a", "+", "?", "^*", r"\b+"):
            with pytest.raises(RegexSyntaxError):
                parse_pattern(src)

    def test_quantified_group(self):
        node = body("(ab)*")
        assert isinstance(node, ast.Quantifier)
        assert isinstance(node.child, ast.Group)


class TestGroups:
    def test_capture_group_numbering(self):
        pattern = parse_pattern(r"a|((b)*c)*d")
        groups = [
            n for n in ast.walk(pattern.body) if isinstance(n, ast.Group)
        ]
        indices = sorted(g.index for g in groups)
        assert indices == [1, 2]

    def test_nested_numbering_by_open_paren(self):
        pattern = parse_pattern("((a)(b))")
        by_index = {
            g.index: g for g in ast.walk(pattern.body) if isinstance(g, ast.Group)
        }
        assert isinstance(by_index[1].child, ast.Concat)
        assert by_index[2].child.source == "a"
        assert by_index[3].child.source == "b"

    def test_non_capturing(self):
        node = body("(?:ab)")
        assert isinstance(node, ast.NonCapGroup)

    def test_lookaheads(self):
        assert body("(?=a)").negative is False
        assert body("(?!a)").negative is True

    def test_unmatched_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("(a")
        with pytest.raises(RegexSyntaxError):
            parse_pattern("a)")

    def test_lookbehind_rejected(self):
        with pytest.raises(UnsupportedRegexError):
            parse_pattern("(?<=a)b")
        with pytest.raises(UnsupportedRegexError):
            parse_pattern("(?<!a)b")

    def test_named_groups(self):
        node = body("(?<tag>a)")
        assert isinstance(node, ast.Group)
        assert node.index == 1 and node.name == "tag"
        pattern = parse_pattern(r"(?<a>x)(?<b>y)\k<b>")
        assert pattern.group_count == 2
        back = pattern.body.parts[-1]
        assert isinstance(back, ast.Backreference) and back.index == 2
        with pytest.raises(RegexSyntaxError):
            parse_pattern("(?<dup>a)(?<dup>b)")
        with pytest.raises(RegexSyntaxError):
            parse_pattern(r"(?<a>x)\k<missing>")


class TestEscapes:
    def test_class_escapes(self):
        assert body(r"\d").charset == DIGIT
        assert body(r"\w").charset == WORD
        assert body(r"\D").charset == DIGIT.complement()

    def test_backreference_vs_octal(self):
        node = body(r"(a)\1")
        assert isinstance(node.parts[1], ast.Backreference)
        # \1 with no group is Annex B octal \x01
        node = body(r"a\1")
        assert node.parts[1].charset == CharSet.of("\x01")

    def test_control_escapes(self):
        assert body(r"\n").charset == CharSet.of("\n")
        assert body(r"\t").charset == CharSet.of("\t")
        assert body(r"\cJ").charset == CharSet.of("\n")

    def test_hex_and_unicode(self):
        assert body(r"\x41").charset == CharSet.of("A")
        assert body(r"A").charset == CharSet.of("A")
        assert body(r"\u{1F600}", "u").charset == CharSet.of("😀")

    def test_invalid_hex(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern(r"\xZZ")

    def test_identity_escape(self):
        assert body(r"\/").charset == CharSet.of("/")
        assert body(r"\.").charset == CharSet.of(".")

    def test_null_escape(self):
        assert body(r"\0").charset == CharSet.of("\0")

    def test_trailing_backslash(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("a\\")


class TestAssertions:
    def test_anchors(self):
        node = body("^a$")
        assert node.parts[0] == ast.Anchor("start")
        assert node.parts[2] == ast.Anchor("end")

    def test_word_boundaries(self):
        node = body(r"\ba\B")
        assert node.parts[0] == ast.WordBoundary(False)
        assert node.parts[2] == ast.WordBoundary(True)


class TestCharacterClasses:
    def test_simple_class(self):
        assert body("[abc]").charset == CharSet.of("abc")

    def test_negated_class(self):
        cs = body("[^abc]").charset
        assert "a" not in cs and "d" in cs

    def test_range(self):
        assert body("[a-f]").charset == CharSet.of_range("a", "f")

    def test_class_with_escapes(self):
        cs = body(r"[\d\-]").charset
        assert "5" in cs and "-" in cs

    def test_literal_dash_at_edges(self):
        assert "-" in body("[-a]").charset
        assert "-" in body("[a-]").charset

    def test_class_escape_adjacent_to_dash_is_literal(self):
        cs = body(r"[\d-x]").charset
        assert "5" in cs and "-" in cs and "x" in cs

    def test_out_of_order_range(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("[z-a]")

    def test_unterminated(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("[abc")

    def test_backspace_escape_in_class(self):
        assert "\x08" in body(r"[\b]").charset

    def test_caret_not_first_is_literal(self):
        assert "^" in body("[a^]").charset


class TestIgnoreCaseFolding:
    def test_literal_folded(self):
        assert body("a", "i").charset == CharSet.of("aA")

    def test_range_folded(self):
        cs = body("[a-z]", "i").charset
        assert "A" in cs and "Z" in cs

    def test_unfolded_without_flag(self):
        assert "A" not in body("a").charset
