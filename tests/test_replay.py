"""Tests for deterministic replay of generated inputs."""

import json

from repro.dse import analyze
from repro.dse.replay import (
    export_test_suite,
    inputs_of_failure,
    replay,
    replay_failures,
)

PROGRAM = r"""
var s = symbol("s", "");
var m = /^(\w+)=(\w*)$/.exec(s);
if (m) {
    if (m[1] === "key") {
        assert(m[2] !== "", "empty value for key");
    }
}
"""


class TestReplay:
    def test_failure_inputs_parse(self):
        failure = "boom (inputs: {'s': 'key='})"
        assert inputs_of_failure(failure) == {"s": "key="}

    def test_failure_without_inputs(self):
        assert inputs_of_failure("plain message") is None

    def test_replay_reproduces_bug(self):
        result = replay(PROGRAM, {"s": "key="})
        assert result.reproduced
        assert "empty value" in result.failures[0]

    def test_replay_clean_input(self):
        result = replay(PROGRAM, {"s": "key=1"})
        assert not result.reproduced
        assert result.covered > 0

    def test_engine_failures_replay(self):
        engine_result = analyze(PROGRAM, max_tests=20, time_budget=30)
        assert engine_result.failures
        replays = replay_failures(PROGRAM, engine_result.failures)
        assert replays and all(r.reproduced for r in replays)

    def test_export_test_suite(self):
        suite = export_test_suite(
            PROGRAM, [{"s": "key="}, {"s": "a=b"}, {"s": "zzz"}]
        )
        parsed = json.loads(suite)
        assert len(parsed["cases"]) == 3
        assert any(case["failures"] for case in parsed["cases"])
