"""Validation of the whole stack against the real-world regex catalog.

Every catalog entry must: parse as ES6, classify, agree with its
positive/negative examples under the concrete matcher, and (for the
solvable subset) yield a CEGAR-validated matching input from the model.
"""

import pytest

from repro.corpus.data import CATALOG, CatalogEntry, solvable_entries
from repro.corpus.features import classify
from repro.model import find_matching_input
from repro.regex import RegExp, parse_regex


@pytest.mark.parametrize("entry", CATALOG, ids=lambda e: e.display)
def test_parses_as_es6(entry: CatalogEntry):
    pattern = parse_regex(entry.pattern, entry.flags)
    assert pattern.group_count >= 0


@pytest.mark.parametrize("entry", CATALOG, ids=lambda e: e.display)
def test_classifies(entry: CatalogEntry):
    features = classify(entry.pattern, entry.flags)
    assert features is not None
    if "captures" in entry.tags:
        assert features.capture_groups
    if "backreference" in entry.tags:
        assert features.backreferences
    if "lookahead" in entry.tags:
        assert features.lookaheads
    if "boundary" in entry.tags:
        assert features.word_boundary
    if "sticky" in entry.tags:
        assert features.sticky_flag


@pytest.mark.parametrize("entry", CATALOG, ids=lambda e: e.display)
def test_concrete_examples(entry: CatalogEntry):
    for positive in entry.positives:
        regexp = RegExp(entry.pattern, entry.flags)
        assert regexp.test(positive), (
            f"{entry.display} should match {positive!r}"
        )
    for negative in entry.negatives:
        regexp = RegExp(entry.pattern, entry.flags)
        assert not regexp.test(negative), (
            f"{entry.display} should not match {negative!r}"
        )


@pytest.mark.parametrize(
    "entry", solvable_entries(), ids=lambda e: e.display
)
def test_model_generates_validated_input(entry: CatalogEntry):
    result = find_matching_input(entry.pattern, entry.flags)
    assert result is not None, f"no input found for {entry.display}"
    word, captures = result
    concrete = RegExp(entry.pattern, entry.flags).exec(word)
    assert concrete is not None, (
        f"{entry.display}: generated {word!r} does not match"
    )
    for index, value in captures.items():
        assert value == concrete[index], (
            f"{entry.display}: capture {index} disagrees on {word!r}"
        )
