"""Span tracing and trace export: disabled fast path, nesting,
multi-process merge, and the Chrome trace-event round-trip."""

import json
import os

import pytest

from repro import obs
from repro.obs.export import (
    ObsRun,
    merge_records,
    read_spool,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.obs.schema import (
    validate_chrome_trace,
    validate_jsonl_trace,
    validate_metrics_file,
)
from repro.obs.tracer import NOOP_SPAN, SpoolSink, Tracer
from repro.service import AnalyzeJob, BatchRunner, RunnerConfig, SolveJob


def _tracer(tmp_path, **kwargs):
    sink = SpoolSink(str(tmp_path / "spool"))
    tracer = Tracer(sink, **kwargs)
    obs.set_tracer(tracer)
    return tracer


class TestDisabledMode:
    def test_span_is_the_shared_noop_singleton(self):
        assert obs.get_tracer() is None
        with obs.span("cegar:solve", iteration=3) as span:
            assert span is NOOP_SPAN
            span.set(status="sat")
            with obs.span("cegar:iter") as inner:
                assert inner is NOOP_SPAN
        assert obs.current_span() is None
        assert not obs.enabled()

    def test_disabled_helpers_emit_nothing(self, tmp_path):
        obs.event("session:restart", reason="test")
        obs.complete_span("backend:native", 0.5, status="sat")
        obs.annotate(route="bounded")
        # Nothing was configured, so nothing can have been spooled.
        assert obs.snapshot()["tracing"] is None
        assert obs.snapshot()["metrics"] is None

    def test_traced_solve_then_disabled_emits_nothing(self, tmp_path):
        spool = tmp_path / "spool"
        tracer = _tracer(tmp_path)
        with obs.span("job:solve"):
            pass
        obs.shutdown()
        before = sorted(os.listdir(spool))
        SolveJob(job_id="s", pattern="a+b").run()
        with obs.span("untracked"):
            pass
        assert sorted(os.listdir(spool)) == before
        assert tracer.spans_recorded == 1


class TestSpanRecording:
    def test_nested_spans_record_parentage(self, tmp_path):
        _tracer(tmp_path)
        with obs.span("job:analyze", job_id="a") as outer:
            with obs.span("cegar:iter", iteration=0) as inner:
                assert obs.current_span() is inner
            assert obs.current_span() is outer
        spool = read_spool(str(tmp_path / "spool"))
        spans = {s["name"]: s for s in spool["spans"]}
        assert spans["cegar:iter"]["parent"] == spans["job:analyze"]["id"]
        assert spans["job:analyze"]["parent"] is None
        assert spans["job:analyze"]["attrs"]["job_id"] == "a"

    def test_error_exit_is_annotated(self, tmp_path):
        _tracer(tmp_path)
        with pytest.raises(ValueError):
            with obs.span("job:analyze"):
                raise ValueError("boom")
        spool = read_spool(str(tmp_path / "spool"))
        assert spool["spans"][0]["attrs"]["error"] == "ValueError"

    def test_explicit_parent_crosses_threads(self, tmp_path):
        # The portfolio backend hands the parent span to executor
        # threads explicitly (contextvars don't follow submit()).
        import threading

        _tracer(tmp_path)
        with obs.span("cegar:solve") as parent:
            thread = threading.Thread(
                target=lambda: obs.span(
                    "portfolio:member", parent=parent
                ).__enter__().__exit__(None, None, None)
            )
            thread.start()
            thread.join()
        spool = read_spool(str(tmp_path / "spool"))
        spans = {s["name"]: s for s in spool["spans"]}
        assert (
            spans["portfolio:member"]["parent"]
            == spans["cegar:solve"]["id"]
        )

    def test_slow_query_log_keeps_only_named_families(self, tmp_path):
        tracer = _tracer(tmp_path, record_spans=False, slow_query_ms=0.0)
        with obs.span("cegar:solve", fingerprint="fp", route="bounded"):
            pass
        with obs.span("backend:native"):
            pass
        assert [e["name"] for e in tracer.slow_queries] == ["cegar:solve"]
        assert tracer.slow_queries[0]["attrs"]["route"] == "bounded"
        assert tracer.spans_recorded == 2  # timed, but not spooled


class TestMergeAndExport:
    def _spool_two_processes(self, tmp_path):
        """Simulate two workers by writing two per-pid spool files."""
        spool = str(tmp_path / "spool")
        os.makedirs(spool, exist_ok=True)
        records = [
            {"k": "span", "name": "b", "id": "2-1", "parent": None,
             "pid": 2, "tid": 2, "seq": 1, "ts": 10.5, "dur": 0.5,
             "attrs": {}},
            {"k": "span", "name": "a", "id": "1-1", "parent": None,
             "pid": 1, "tid": 1, "seq": 1, "ts": 10.0, "dur": 1.0,
             "attrs": {}},
            {"k": "span", "name": "a2", "id": "1-2", "parent": "1-1",
             "pid": 1, "tid": 1, "seq": 2, "ts": 10.0, "dur": 0.25,
             "attrs": {}},
        ]
        for record in records:
            with open(
                os.path.join(spool, f"obs-{record['pid']}.jsonl"), "a"
            ) as handle:
                handle.write(json.dumps(record) + "\n")
        return spool, records

    def test_merge_orders_by_ts_pid_seq(self, tmp_path):
        spool, _ = self._spool_two_processes(tmp_path)
        merged = merge_records(read_spool(spool)["spans"])
        assert [r["name"] for r in merged] == ["a", "a2", "b"]

    def test_jsonl_export_round_trips_and_validates(self, tmp_path):
        spool, _ = self._spool_two_processes(tmp_path)
        out = str(tmp_path / "trace.jsonl")
        write_jsonl_trace(out, merge_records(read_spool(spool)["spans"]))
        assert validate_jsonl_trace(out) == []
        lines = [json.loads(l) for l in open(out)]
        assert [r["pid"] for r in lines] == [1, 1, 2]

    def test_chrome_export_round_trips_and_validates(self, tmp_path):
        spool, _ = self._spool_two_processes(tmp_path)
        out = str(tmp_path / "trace.json")
        write_chrome_trace(
            out, merge_records(read_spool(spool)["spans"])
        )
        doc = json.loads(open(out).read())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in complete} == {1, 2}
        for event in complete:
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["tid"], int)
            assert event["ph"] == "X"
        # Timestamps are origin-normalized microseconds.
        origin = min(e["ts"] for e in complete)
        assert origin == 0
        durations = {e["name"]: e["dur"] for e in complete}
        assert durations["a"] == pytest.approx(1_000_000)
        assert validate_chrome_trace(out) == []

    def test_obs_run_none_when_nothing_requested(self):
        assert ObsRun.start() is None


class TestTracedBatchEndToEnd:
    SOURCE = (
        'var s = symbol("s", "");\n'
        'if (/^a+$/.test(s)) { 1; } else { 2; }\n'
    )

    def _jobs(self, count):
        return [
            AnalyzeJob(
                job_id=f"a{i}", source=self.SOURCE, max_tests=3,
                time_budget=5.0, backend="native",
            )
            for i in range(count)
        ]

    def test_two_worker_batch_produces_nested_chrome_trace(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        metrics_json = str(tmp_path / "metrics.json")
        runner = BatchRunner(
            RunnerConfig(
                workers=2,
                trace=trace,
                trace_format="chrome",
                metrics_json=metrics_json,
                slow_query_ms=0.0,
            )
        )
        report = runner.run(self._jobs(8))
        assert all(r.status == "ok" for r in report.results)
        assert report.trace_path == trace
        assert report.metrics_path == metrics_json
        # Tracing is torn back down after the run.
        assert not obs.enabled()

        doc = json.load(open(trace))
        assert validate_chrome_trace(trace) == []
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in complete}
        assert len(pids) >= 2  # parent + >=2 workers spooled spans
        assert len(report.obs_pids) >= 2

        by_id = {e["args"]["span_id"]: e for e in complete}

        def ancestry(event):
            names = [event["name"]]
            while event["args"].get("parent_id") in by_id:
                event = by_id[event["args"]["parent_id"]]
                names.append(event["name"])
            return names

        # The acceptance shape: job -> ... -> CEGAR iteration -> backend.
        backend_spans = [
            e for e in complete if e["name"].startswith("backend:")
        ]
        assert backend_spans
        chains = [ancestry(e) for e in backend_spans]
        assert any(
            "cegar:iter" in chain and "job:analyze" in chain
            for chain in chains
        )
        iter_spans = [e for e in complete if e["name"] == "cegar:iter"]
        assert iter_spans  # one span per refinement iteration
        assert validate_metrics_file(metrics_json) == []
        merged = json.load(open(metrics_json))
        totals = {
            series["labels"].get("status"): series["value"]
            for series in merged["counters"].get(
                "solver_queries_total", []
            )
        }
        assert sum(totals.values()) > 0
        # Slow-query entries (threshold 0) surfaced into the report.
        assert report.slow_queries
        assert {"name", "ms", "pid", "attrs"} <= set(
            report.slow_queries[0]
        )

    def test_untraced_batch_leaves_no_artifacts(self, tmp_path):
        report = BatchRunner(RunnerConfig(workers=0)).run(self._jobs(1))
        assert report.trace_path is None
        assert report.metrics_path is None
        assert report.slow_queries == []
        assert not obs.enabled()
