"""The labeled metrics registry, its merge, and the SolverStats feed."""

import threading

import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.export import merge_metrics
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.solver.stats import QueryRecord, SolverStats


def _enable():
    registry = MetricsRegistry()
    metrics.set_registry(registry)
    return registry


class TestRegistry:
    def test_disabled_calls_are_noops(self):
        assert metrics.get_registry() is None
        metrics.count("solver_queries_total", status="sat")
        metrics.observe("solver_query_seconds", 0.5)
        metrics.gauge_set("pool_size", 3)
        assert metrics.get_registry() is None
        assert not metrics.enabled()

    def test_counter_gauge_histogram_snapshot_shape(self):
        registry = _enable()
        metrics.count("queries_total", status="sat")
        metrics.count("queries_total", 2, status="sat")
        metrics.count("queries_total", status="unsat")
        metrics.gauge_set("sessions_live", 4, pool="z3")
        metrics.observe("query_seconds", 0.002)
        metrics.observe("query_seconds", 3.0)
        snapshot = registry.snapshot()
        counters = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snapshot["counters"]["queries_total"]
        }
        assert counters[(("status", "sat"),)] == 3
        assert counters[(("status", "unsat"),)] == 1
        gauge = snapshot["gauges"]["sessions_live"][0]
        assert gauge == {"labels": {"pool": "z3"}, "value": 4}
        histogram = snapshot["histograms"]["query_seconds"][0]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(3.002)
        # One observation under 2ms, one in the overflow bucket.
        assert sum(histogram["buckets"].values()) == 2

    def test_concurrent_counts_do_not_lose_increments(self):
        registry = _enable()

        def hammer():
            for _ in range(500):
                metrics.count("hits_total", outcome="hit")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits_total"][0]["value"] == 2000

    def test_merge_snapshots_sums_every_section(self):
        first = _enable()
        metrics.count("queries_total", 2, status="sat")
        metrics.observe("seconds", 0.001)
        one = first.snapshot()
        second = MetricsRegistry()
        metrics.set_registry(second)
        metrics.count("queries_total", 3, status="sat")
        metrics.count("queries_total", 1, status="unsat")
        metrics.observe("seconds", 0.001)
        two = second.snapshot()
        merged = merge_snapshots([one, two])
        by_status = {
            s["labels"]["status"]: s["value"]
            for s in merged["counters"]["queries_total"]
        }
        assert by_status == {"sat": 5, "unsat": 1}
        assert merged["histograms"]["seconds"][0]["count"] == 2

    def test_merge_metrics_prefers_live_parent_snapshot(self):
        registry = _enable()
        metrics.count("queries_total", 7)
        live = registry.snapshot()
        import os

        stale = {
            "counters": {"queries_total": [{"labels": {}, "value": 1}]},
            "gauges": {},
            "histograms": {},
        }
        spool = {
            "metrics": {os.getpid(): stale, 999999: stale}
        }
        merged = merge_metrics(spool, live)
        # Own spooled checkpoint superseded by the live snapshot; the
        # foreign worker checkpoint still contributes.
        assert merged["counters"]["queries_total"][0]["value"] == 8


class TestSolverStatsFeed:
    def test_stats_feed_registry_without_duplicating_tallies(self):
        registry = _enable()
        stats = SolverStats()
        stats.record(QueryRecord(seconds=0.01, status="sat"))
        stats.record(
            QueryRecord(seconds=0.02, status="unsat", refinements=2)
        )
        stats.record_cache(hit=True)
        stats.record_cache(hit=False)
        stats.record_backend("native", "sat", 0.01)
        stats.record_session("session:z3", spawns=1, queries=3)
        stats.record_route("bounded", "native")
        snapshot = registry.snapshot()
        queries = {
            (s["labels"]["status"], s["labels"]["refined"]): s["value"]
            for s in snapshot["counters"]["solver_queries_total"]
        }
        assert queries == {("sat", "false"): 1, ("unsat", "true"): 1}
        cache = {
            s["labels"]["outcome"]: s["value"]
            for s in snapshot["counters"]["query_cache_lookups_total"]
        }
        assert cache == {"hit": 1, "miss": 1}
        backend = snapshot["counters"]["backend_queries_total"][0]
        assert backend["labels"] == {"backend": "native", "status": "sat"}
        sessions = {
            s["labels"]["kind"]: s["value"]
            for s in snapshot["counters"]["session_events_total"]
        }
        assert sessions == {"spawns": 1, "queries": 3}
        route = snapshot["counters"]["route_decisions_total"][0]
        assert route["labels"] == {"route": "bounded", "target": "native"}
        # The stats object itself still tallies as before.
        assert len(stats.queries) == 2
        assert stats.cache_hits == 1 and stats.cache_misses == 1

    def test_stats_work_with_metrics_disabled(self):
        stats = SolverStats()
        stats.record(QueryRecord(seconds=0.01, status="sat"))
        stats.record_cache(hit=True)
        stats.record_backend("native", "sat", 0.01)
        assert len(stats.queries) == 1
        assert stats.cache_hits == 1


class TestQueryRecordRing:
    def test_unbounded_by_default(self):
        stats = SolverStats()
        for _ in range(300):
            stats.record(QueryRecord(seconds=0.0, status="sat"))
        assert len(stats.queries) == 300
        assert stats.dropped_query_records == 0

    def test_cap_drops_oldest_and_counts(self):
        stats = SolverStats(max_query_records=10)
        for index in range(25):
            stats.record(
                QueryRecord(seconds=float(index), status="sat")
            )
        assert len(stats.queries) == 10
        # The survivors are the newest records.
        assert [r.seconds for r in stats.queries] == [
            float(i) for i in range(15, 25)
        ]
        assert stats.dropped_query_records == 15
        assert stats.refinement_summary()["dropped_records"] == 15

    def test_summary_reports_zero_drops_without_cap(self):
        stats = SolverStats()
        stats.record(QueryRecord(seconds=0.0, status="sat"))
        assert stats.refinement_summary()["dropped_records"] == 0


class TestObsSnapshot:
    def test_snapshot_shape_when_enabled(self, tmp_path):
        from repro.obs.tracer import SpoolSink, Tracer

        _enable()
        metrics.count("queries_total")
        obs.set_tracer(
            Tracer(SpoolSink(str(tmp_path / "spool")), slow_query_ms=0.0)
        )
        with obs.span("cegar:solve"):
            pass
        snapshot = obs.snapshot()
        assert snapshot["tracing"]["spans_recorded"] == 1
        assert snapshot["tracing"]["slow_queries"]
        assert (
            snapshot["metrics"]["counters"]["queries_total"][0]["value"]
            == 1
        )
        assert snapshot["pid"] > 0
