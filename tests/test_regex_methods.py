"""Unit tests for the String.prototype regex methods (concrete §6.1)."""

import pytest

from repro.regex import RegExp
from repro.regex.methods import match, replace, search, split


class TestMatch:
    def test_non_global_is_exec(self):
        result = match(RegExp(r"(o+)"), "good food")
        assert list(result) == ["oo", "oo"]
        assert result.index == 1

    def test_global_collects_all(self):
        assert match(RegExp(r"\d+", "g"), "a1b22c333") == ["1", "22", "333"]

    def test_global_no_match(self):
        assert match(RegExp(r"\d", "g"), "abc") is None

    def test_global_zero_length_matches_terminate(self):
        result = match(RegExp(r"a*", "g"), "bab")
        assert result is not None and "a" in result

    def test_global_resets_last_index(self):
        regexp = RegExp(r"\d", "g")
        match(regexp, "123")
        assert regexp.last_index == 0


class TestSearch:
    def test_found(self):
        assert search(RegExp(r"\d+"), "abc123") == 3

    def test_not_found(self):
        assert search(RegExp("z"), "abc") == -1

    def test_ignores_last_index(self):
        regexp = RegExp(r"a", "g")
        regexp.last_index = 2
        assert search(regexp, "abc") == 0
        assert regexp.last_index == 2


class TestSplit:
    def test_simple(self):
        assert split(RegExp(","), "a,b,c") == ["a", "b", "c"]

    def test_regex_separator(self):
        assert split(RegExp(r"\s*;\s*"), "a ; b;c") == ["a", "b", "c"]

    def test_captures_spliced_in(self):
        assert split(RegExp(r"(-)"), "a-b") == ["a", "-", "b"]

    def test_limit(self):
        assert split(RegExp(","), "a,b,c", limit=2) == ["a", "b"]
        assert split(RegExp(","), "a,b,c", limit=0) == []

    def test_no_separator_match(self):
        assert split(RegExp("x"), "abc") == ["abc"]

    def test_empty_subject(self):
        assert split(RegExp(","), "") == [""]
        assert split(RegExp(""), "") == []

    def test_trailing_separator(self):
        assert split(RegExp(","), "a,") == ["a", ""]


class TestReplace:
    def test_first_only_without_global(self):
        assert replace(RegExp("o"), "foo", "0") == "f0o"

    def test_all_with_global(self):
        assert replace(RegExp("o", "g"), "foo boo", "0") == "f00 b00"

    def test_paper_example(self):
        assert replace(
            RegExp("goo+d"), "this is goood", "better"
        ) == "this is better"

    def test_dollar_ampersand(self):
        assert replace(RegExp(r"\d+"), "x42y", "[$&]") == "x[42]y"

    def test_capture_references(self):
        assert replace(
            RegExp(r"(\w+)@(\w+)"), "user@host", "$2:$1"
        ) == "host:user"

    def test_dollar_literal(self):
        assert replace(RegExp("a"), "a", "$$") == "$"

    def test_context_refs(self):
        assert replace(RegExp("b"), "abc", "[$`|$']") == "a[a|c]c"

    def test_no_match_returns_subject(self):
        assert replace(RegExp("z"), "abc", "x") == "abc"

    def test_undefined_capture_is_empty(self):
        assert replace(RegExp(r"(x)|(a)"), "a", "<$1>") == "<>"
