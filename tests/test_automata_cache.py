"""The interned automata compilation cache and its on-disk store."""

import os
import pickle

import pytest

from repro.automata import (
    DfaDiskStore,
    automata_cache_counters,
    clear_caches,
    configure_automata_cache,
    dfa_for,
    dfa_for_pattern,
    node_fingerprint,
)
from repro.automata.build import NotRegularError
from repro.automata.cache import (
    STORE_VERSION,
    counters_delta,
    dfa_from_blob,
    dfa_to_blob,
)
from repro.regex import parse_regex


def body(src):
    return parse_regex(src).body


class TestFingerprint:
    def test_structural_not_textual(self, clean_automata):
        # Same charset, different surface syntax.
        assert node_fingerprint(body("[a-c]")) == node_fingerprint(
            body("[cba]")
        )
        assert node_fingerprint(body("[a-c]")) != node_fingerprint(
            body("[a-d]")
        )

    def test_group_syntax_is_transparent(self, clean_automata):
        assert node_fingerprint(body("(?:ab)+")) == node_fingerprint(
            body("(ab)+")
        )

    def test_laziness_is_erased(self, clean_automata):
        assert node_fingerprint(body("a+?")) == node_fingerprint(body("a+"))

    def test_distinguishes_quantifier_bounds(self, clean_automata):
        fingerprints = {
            node_fingerprint(body(src))
            for src in ("a{2,3}", "a{2,4}", "a{2,}", "a*", "a|b", "ab")
        }
        assert len(fingerprints) == 6

    def test_non_regular_nodes_rejected(self, clean_automata):
        with pytest.raises(NotRegularError):
            node_fingerprint(body("^a"))

    def test_interner_shares_across_ast_identities(self, clean_automata):
        first = dfa_for(body("(x|y)*z"))
        before = automata_cache_counters()
        second = dfa_for(body("(?:x|y)*?z"))  # same language, new AST
        after = automata_cache_counters()
        assert second is first
        assert after["misses"] == before["misses"]


class TestBlobRoundtrip:
    def test_roundtrip_preserves_language(self, clean_automata):
        dfa = dfa_for_pattern(r"(?:ab|ba)+c?")
        rebuilt = dfa_from_blob(dfa_to_blob(dfa))
        assert rebuilt.equivalent(dfa)

    def test_version_mismatch_rejected(self, clean_automata):
        blob = list(dfa_to_blob(dfa_for_pattern("a+")))
        blob[1] = STORE_VERSION + 1
        with pytest.raises(ValueError):
            dfa_from_blob(tuple(blob))


class TestDiskStore:
    def test_cold_then_warm(self, clean_automata, tmp_path):
        configure_automata_cache(str(tmp_path))
        dfa_for_pattern(r"[a-z]+=[0-9]+")
        cold = automata_cache_counters()
        assert cold["misses"] >= 1
        assert cold["disk_stores"] >= 1

        clear_caches()  # fresh process simulation: memory gone, disk stays
        configure_automata_cache(str(tmp_path))
        warm_dfa = dfa_for_pattern(r"[a-z]+=[0-9]+")
        warm = automata_cache_counters()
        assert warm["misses"] == 0
        assert warm["disk_hits"] >= 1
        assert warm_dfa.accepts_word("k=1")
        assert not warm_dfa.accepts_word("k=")

    def test_corrupt_entry_degrades_to_recompile(
        self, clean_automata, tmp_path
    ):
        configure_automata_cache(str(tmp_path))
        dfa_for_pattern("corrupt|me")
        version_dir = tmp_path / f"v{STORE_VERSION}"
        (entry,) = [
            p for p in version_dir.iterdir() if p.suffix == ".dfa"
        ]
        entry.write_bytes(b"not a pickle")

        clear_caches()
        configure_automata_cache(str(tmp_path))
        dfa = dfa_for_pattern("corrupt|me")
        counters = automata_cache_counters()
        assert dfa.accepts_word("me")
        assert counters["disk_hits"] == 0
        assert counters["misses"] == 1
        assert counters["disk_failures"] == 1
        # The corrupt entry was evicted and replaced by the recompiled
        # DFA: a third cold start loads cleanly from disk again.
        assert counters["disk_stores"] == 1
        clear_caches()
        configure_automata_cache(str(tmp_path))
        dfa_for_pattern("corrupt|me")
        assert automata_cache_counters()["disk_hits"] == 1

    def test_foreign_pickle_shape_is_a_miss(self, clean_automata, tmp_path):
        store = DfaDiskStore(str(tmp_path))
        entry = os.path.join(store.path, "deadbeef.dfa")
        with open(entry, "wb") as handle:
            pickle.dump(("something", "else"), handle)
        assert store.get("deadbeef") is None
        assert store.failures == 1

    def test_store_is_versioned_by_directory(self, clean_automata, tmp_path):
        store = DfaDiskStore(str(tmp_path))
        assert store.path == os.path.join(
            str(tmp_path), f"v{STORE_VERSION}"
        )
        store.put("abc", dfa_for_pattern("a"))
        assert len(store) == 1

    def test_unusable_store_path_degrades_to_memory_only(
        self, clean_automata, tmp_path
    ):
        blocker = tmp_path / "a-file"
        blocker.write_text("not a directory")
        # The parent of the store dir is a file: creation fails, the
        # interner must run memory-only instead of crashing the worker.
        configure_automata_cache(str(blocker / "store"))
        dfa = dfa_for_pattern("deg|rade")
        counters = automata_cache_counters()
        assert dfa.accepts_word("rade")
        assert counters["misses"] == 1
        assert counters["disk_stores"] == 0

    def test_unwritable_entry_degrades_silently(
        self, clean_automata, tmp_path
    ):
        store = DfaDiskStore(str(tmp_path))
        # A directory squatting on the entry path makes the atomic
        # replace fail (works even when running as root, where a
        # permissions-based setup would be bypassed).
        os.makedirs(store._entry("blocked"))
        store.put("blocked", dfa_for_pattern("a"))
        assert store.failures == 1
        assert store.stores == 0


class TestClearCaches:
    def test_clear_resets_interner_and_disk_handle(
        self, clean_automata, tmp_path
    ):
        configure_automata_cache(str(tmp_path))
        dfa_for_pattern("reset?me")
        assert automata_cache_counters()["memory_size"] >= 1

        clear_caches()
        counters = automata_cache_counters()
        assert counters["memory_size"] == 0
        assert counters == {
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
            "disk_stores": 0,
            "disk_failures": 0,
            "disk_corrupt_evictions": 0,
            "memory_size": 0,
        }
        # The disk handle is detached too: a recompile after the clear
        # must not consult (or repopulate) the old store.
        dfa_for_pattern("reset?me2")
        assert automata_cache_counters()["disk_stores"] == 0

    def test_counters_delta(self):
        before = {"hits": 2, "misses": 1, "disk_hits": 0, "disk_stores": 0}
        after = {"hits": 5, "misses": 2, "disk_hits": 1, "disk_stores": 1}
        assert counters_delta(before, after) == {
            "hits": 3,
            "misses": 1,
            "disk_hits": 1,
            "disk_stores": 1,
        }
