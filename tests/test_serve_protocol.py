"""Wire-protocol and connection-lifecycle tests for the serve daemon.

The daemon runs in process (see ``serve_testing``) so job timing is
controlled with gates and the suite needs no subprocess except the one
test that must observe a real SIGTERM exit status.
"""

import json
import os
import signal
import socket
import subprocess
import sys

import pytest

from repro.serve import protocol
from repro.serve.client import Rejected, ServeClient, ServeError
from repro.service import jobs

from serve_testing import (
    GateJob,
    open_gate,
    reset_gates,
    start_daemon,
    stop_started,
    wait_until,
)


@pytest.fixture(autouse=True)
def _serve_teardown():
    reset_gates()
    yield
    reset_gates()  # opens any still-held gate so jobs can finish
    stop_started()


@pytest.fixture
def gate_kind(monkeypatch):
    monkeypatch.setitem(jobs._JOB_KINDS, "gate", GateJob)


def raw_connect(sock_path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(sock_path)
    sock.settimeout(15.0)
    return sock, sock.makefile("rb")


def read_frame(reader):
    line = reader.readline()
    assert line, "daemon closed the connection unexpectedly"
    return json.loads(line)


class TestFrames:
    def test_round_trip(self):
        frame = {"op": "submit", "id": 7, "job": {"kind": "solve"}}
        assert protocol.decode_frame(protocol.encode_frame(frame)) == frame

    def test_encode_is_one_line(self):
        data = protocol.encode_frame({"a": "b\nc"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_bad_json_raises(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.decode_frame(b"{nope")
        assert info.value.code == "bad-json"

    def test_non_object_raises(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.decode_frame(b"[1, 2]")
        assert info.value.code == "bad-json"

    def test_undecodable_bytes_raise(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"\xff\xfe{}")


class TestParseRequest:
    def test_submit(self):
        request = protocol.parse_request(
            {"op": "submit", "id": "r1", "job": {"kind": "solve"}}
        )
        assert request.op == "submit"
        assert request.request_id == "r1"
        assert request.job_spec == {"kind": "solve"}

    def test_unknown_op(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.parse_request({"op": "shutdown"})
        assert info.value.code == "unknown-op"

    def test_submit_without_job(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.parse_request({"op": "submit", "id": 1})
        assert info.value.code == "bad-request"

    def test_job_without_kind(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.parse_request(
                {"op": "submit", "id": 1, "job": {"pattern": "a"}}
            )
        assert info.value.code == "bad-request"


class TestWireErrors:
    def test_malformed_json_keeps_connection(self, tmp_path):
        _, sock_path = start_daemon(tmp_path)
        sock, reader = raw_connect(sock_path)
        try:
            sock.sendall(b"{this is not json\n")
            frame = read_frame(reader)
            assert frame["op"] == "error"
            assert frame["error"] == "bad-json"
            # The newline resynchronized the stream: a ping still works.
            sock.sendall(protocol.encode_frame({"op": "ping", "id": 9}))
            assert read_frame(reader)["op"] == "pong"
        finally:
            sock.close()

    def test_oversized_frame_errors_and_closes(self, tmp_path):
        _, sock_path = start_daemon(tmp_path, max_frame_bytes=1024)
        sock, reader = raw_connect(sock_path)
        try:
            sock.sendall(b"x" * 4096 + b"\n")
            frame = read_frame(reader)
            assert frame["op"] == "error"
            assert frame["error"] == "oversized-frame"
            assert reader.readline() == b""  # connection closed
        finally:
            sock.close()

    def test_unknown_kind_is_bad_request(self, tmp_path):
        _, sock_path = start_daemon(tmp_path)
        sock, reader = raw_connect(sock_path)
        try:
            sock.sendall(
                protocol.encode_frame(
                    {"op": "submit", "id": 4, "job": {"kind": "nope"}}
                )
            )
            frame = read_frame(reader)
            assert frame["op"] == "error"
            assert frame["error"] == "bad-request"
            assert frame["id"] == 4
            assert "nope" in frame["detail"]
        finally:
            sock.close()

    def test_client_error_raises_serve_error(self, tmp_path):
        _, sock_path = start_daemon(tmp_path)
        with ServeClient(socket_path=sock_path, timeout=15.0) as client:
            with pytest.raises(ServeError):
                client.submit({"kind": "nope"})


class TestRequests:
    def test_ping_and_stats_shapes(self, tmp_path):
        _, sock_path = start_daemon(tmp_path)
        with ServeClient(socket_path=sock_path, timeout=15.0) as client:
            client.ping()
            frame = client.stats()
            server = frame["server"]
            assert server["clients_connected"] == 1
            assert server["queue_depth"] == 0
            assert server["in_flight"] == 0
            assert "singleflight_coalesced" in server
            assert "pid" in frame["obs"]

    def test_submit_acks_echo_ids_and_fill_job_id(self, tmp_path):
        _, sock_path = start_daemon(tmp_path)
        with ServeClient(socket_path=sock_path, timeout=60.0) as client:
            ack = client.submit({"kind": "solve", "pattern": "a+"})
            assert ack["job_id"].startswith("job-")
            assert ack["coalesced"] is False
            result = client.wait_result(ack["id"])
            assert result.status == "ok"
            assert result.job_id == ack["job_id"]

    def test_tcp_mode(self, tmp_path):
        from repro.serve.server import ServeConfig, ServeServer
        from repro.service.runner import BatchRunner, RunnerConfig

        server = ServeServer(
            BatchRunner(RunnerConfig(workers=0)),
            ServeConfig(port=0),
        ).start_background()
        try:
            assert server.address[0] == "tcp"
            port = server.address[2]
            with ServeClient(port=port, timeout=60.0) as client:
                results = client.run(
                    [{"kind": "solve", "pattern": "t[uv]+"}]
                )
            assert results[0].status == "ok"
            assert results[0].payload["found"] is True
        finally:
            server.stop()


class TestStreaming:
    def test_results_stream_as_completed(self, tmp_path, gate_kind):
        _, sock_path = start_daemon(tmp_path, max_inflight=2)
        with ServeClient(socket_path=sock_path, timeout=15.0) as client:
            slow = client.submit({"kind": "gate", "gate": "slow"})
            fast = client.submit({"kind": "gate", "gate": "fast"})
            open_gate("fast")
            arrivals = []
            for request_id, result, _ in client.iter_results():
                arrivals.append(request_id)
                if request_id == fast["id"]:
                    open_gate("slow")  # only now may the slow job end
            assert arrivals == [fast["id"], slow["id"]]

    def test_concurrent_clients_interleave(self, tmp_path, gate_kind):
        server, sock_path = start_daemon(tmp_path, max_inflight=2)
        a = ServeClient(socket_path=sock_path, timeout=15.0)
        b = ServeClient(socket_path=sock_path, timeout=15.0)
        try:
            slow_a = a.submit({"kind": "gate", "gate": "a-slow"})
            fast_b = b.submit({"kind": "gate", "gate": "b-fast"})
            open_gate("b-fast")
            # B's result lands while A's job is still in flight.
            result_b = b.wait_result(fast_b["id"])
            assert result_b.status == "ok"
            stats = b.stats()["server"]
            assert stats["clients_connected"] == 2
            assert stats["in_flight"] == 1
            open_gate("a-slow")
            assert a.wait_result(slow_a["id"]).status == "ok"
        finally:
            a.close()
            b.close()


class TestDisconnect:
    def test_mid_job_disconnect_drops_result_and_recycles(
        self, tmp_path, gate_kind
    ):
        server, sock_path = start_daemon(tmp_path)
        victim = ServeClient(socket_path=sock_path, timeout=15.0)
        victim.submit({"kind": "gate", "gate": "held"})
        wait_until(lambda: server.scheduler.in_flight == 1)
        victim.close()
        wait_until(lambda: not server._connections)
        open_gate("held")
        wait_until(lambda: server.scheduler.completed == 1)
        assert server.scheduler.results_dropped == 1
        # The worker slot came back: a fresh client's job runs fine.
        with ServeClient(socket_path=sock_path, timeout=60.0) as client:
            results = client.run([{"kind": "solve", "pattern": "r+s"}])
        assert results[0].status == "ok"

    def test_disconnect_cancels_queued_jobs(self, tmp_path, gate_kind):
        server, sock_path = start_daemon(tmp_path, max_inflight=1)
        victim = ServeClient(socket_path=sock_path, timeout=15.0)
        victim.submit({"kind": "gate", "gate": "head"})
        victim.submit({"kind": "gate", "gate": "queued-1"})
        victim.submit({"kind": "gate", "gate": "queued-2"})
        wait_until(lambda: server.scheduler.queue_depth == 2)
        victim.close()
        wait_until(lambda: server.scheduler.queue_depth == 0)
        open_gate("head")
        wait_until(lambda: server.scheduler.completed == 1)
        # The queued jobs never executed — their submitter is gone.
        assert server.scheduler.executed == 1


class TestOverload:
    def test_explicit_overloaded_rejection(self, tmp_path, gate_kind):
        _, sock_path = start_daemon(
            tmp_path, max_inflight=1, max_queue=1
        )
        with ServeClient(socket_path=sock_path, timeout=15.0) as client:
            client.submit({"kind": "gate", "gate": "busy"})  # in flight
            client.submit({"kind": "gate", "gate": "parked"})  # queued
            with pytest.raises(Rejected) as info:
                client.submit({"kind": "gate", "gate": "extra"})
            assert info.value.reason == "overloaded"
            assert info.value.frame["max_queue"] == 1
            open_gate("busy")
            open_gate("parked")
            done = {rid for rid, _, _ in client.iter_results()}
            assert len(done) == 2


class TestDrainReleasesResources:
    def test_drain_closes_pooled_solver_sessions(self, tmp_path):
        from repro.solver.backends import get_session_pool
        from test_session_pool import fake_solver

        cmd = fake_solver(tmp_path, verdict="sat")
        server, sock_path = start_daemon(tmp_path)
        with ServeClient(socket_path=sock_path, timeout=60.0) as client:
            results = client.run(
                [{"kind": "solve", "pattern": "a+",
                  "backend": f"session:{cmd}"}]
            )
        assert results[0].status == "ok"
        pool = get_session_pool()
        assert pool.idle_count(cmd) == 1  # live solver process parked
        server.stop()
        # The drain closed the parked session — no leaked Popen.
        assert pool.idle_count(cmd) == 0


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        sock_path = str(tmp_path / "drain.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", sock_path, "-w", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            wait_until(lambda: os.path.exists(sock_path), timeout=30.0)
            with ServeClient(socket_path=sock_path, timeout=60.0) as client:
                results = client.run(
                    [{"kind": "solve", "pattern": "d(e|f)g"}]
                )
            assert results[0].status == "ok"
            daemon.send_signal(signal.SIGTERM)
            output, _ = daemon.communicate(timeout=60.0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()
        assert daemon.returncode == 0, output
        assert "drained, exiting" in output
