"""Unit tests for the solver statistics collector (Table 8 plumbing)."""

from repro.solver.stats import QueryRecord, SolverStats


def record(seconds=0.1, status="sat", **kwargs):
    return QueryRecord(seconds=seconds, status=status, **kwargs)


class TestAggregation:
    def test_empty_summary(self):
        stats = SolverStats()
        summary = stats.summary()
        assert summary["all"]["count"] == 0
        assert summary["all"]["mean"] == 0.0

    def test_basic_aggregates(self):
        stats = SolverStats()
        stats.record(record(seconds=0.1))
        stats.record(record(seconds=0.3))
        agg = stats.summary()["all"]
        assert agg["count"] == 2
        assert abs(agg["mean"] - 0.2) < 1e-9
        assert agg["min"] == 0.1 and agg["max"] == 0.3

    def test_subset_classification(self):
        stats = SolverStats()
        stats.record(record(had_regex=True))
        stats.record(record(had_regex=True, had_captures=True))
        stats.record(
            record(had_regex=True, had_captures=True, refinements=3)
        )
        stats.record(
            record(
                status="unknown",
                had_captures=True,
                refinements=21,
                hit_refinement_limit=True,
            )
        )
        summary = stats.summary()
        assert summary["with_captures"]["count"] == 3
        assert summary["with_refinement"]["count"] == 2
        assert summary["hit_limit"]["count"] == 1

    def test_refinement_summary(self):
        stats = SolverStats()
        stats.record(record())
        stats.record(record(had_regex=True, had_captures=True, refinements=1))
        stats.record(record(had_regex=True, had_captures=True, refinements=5))
        ref = stats.refinement_summary()
        assert ref["total_queries"] == 3
        assert ref["regex_queries"] == 2
        assert ref["capture_queries"] == 2
        assert ref["refined_queries"] == 2
        assert ref["mean_refinements"] == 3.0
        assert ref["limit_queries"] == 0

    def test_total_time(self):
        stats = SolverStats()
        stats.record(record(seconds=0.25))
        stats.record(record(seconds=0.75))
        assert abs(stats.total_time() - 1.0) < 1e-9
