"""Tests for the lazy union algebra and its solver wiring.

``LazyUnion`` must agree with the eagerly determinized alternation on
the whole query surface while visiting strictly fewer states on
blowup-prone alternations, compose with ``LazyProduct`` (a union nested
inside an intersection), and respect the bounded product-state LRU.
"""

import pytest

from repro.automata import dfa_for_pattern, lazy_union_all
from repro.automata.lazy import LazyProduct, LazyUnion
from repro.constraints import InRe, Not, StrVar, conj
from repro.regex import parse_regex
from repro.automata.build import erase_captures
from repro.solver import SAT, Solver, UNSAT


def union_of(*patterns):
    return LazyUnion([dfa_for_pattern(p) for p in patterns])


def eager_union(*patterns):
    return dfa_for_pattern("|".join(f"(?:{p})" for p in patterns))


WORDS = ["", "a", "b", "ab", "ba", "abc", "aab", "bbb", "abab", "x", "a0"]


class TestUnionSemantics:
    PATTERN_SETS = [
        ("a+", "b+"),
        ("ab", "a+b", "ba"),
        ("[0-9]{2}", "x[0-9]", "a*"),
        ("(?:ab)+", "a", "b?"),
    ]

    @pytest.mark.parametrize("patterns", PATTERN_SETS)
    def test_accepts_word_matches_eager(self, patterns):
        lazy = union_of(*patterns)
        eager = eager_union(*patterns)
        for word in WORDS:
            assert lazy.accepts_word(word) == eager.accepts_word(word)

    @pytest.mark.parametrize("patterns", PATTERN_SETS)
    def test_materialize_is_language_equivalent(self, patterns):
        assert union_of(*patterns).materialize().equivalent(
            eager_union(*patterns)
        )

    @pytest.mark.parametrize("patterns", PATTERN_SETS)
    def test_shortest_word_length_matches(self, patterns):
        lazy_witness = union_of(*patterns).shortest_word()
        eager_witness = eager_union(*patterns).shortest_word()
        assert (lazy_witness is None) == (eager_witness is None)
        if lazy_witness is not None:
            assert len(lazy_witness) == len(eager_witness)
            assert eager_union(*patterns).accepts_word(lazy_witness)

    def test_empty_union_components(self):
        # Options with empty languages don't poison the union.
        lazy = LazyUnion(
            [dfa_for_pattern("a[b]").intersect(dfa_for_pattern("c")),
             dfa_for_pattern("xy")]
        )
        assert not lazy.is_empty()
        assert lazy.shortest_word() == "xy"

    def test_all_dead_union_is_empty(self):
        dead = dfa_for_pattern("a").intersect(dfa_for_pattern("b"))
        lazy = LazyUnion([dead, dead])
        assert lazy.is_empty()
        assert lazy.shortest_word() is None

    @pytest.mark.parametrize("patterns", PATTERN_SETS)
    def test_words_are_accepted_and_length_ordered(self, patterns):
        lazy = union_of(*patterns)
        eager = eager_union(*patterns)
        out = list(lazy.words(max_count=12, max_length=8))
        assert out
        assert all(eager.accepts_word(w) for w in out)
        lengths = [len(w) for w in out]
        assert lengths == sorted(lengths)

    def test_lazy_union_all_facade(self):
        assert lazy_union_all([]) is None
        single = dfa_for_pattern("a+")
        assert lazy_union_all([single]) is single
        assert isinstance(
            lazy_union_all([single, dfa_for_pattern("b")]), LazyUnion
        )


class TestUnionLaziness:
    def _blowup_options(self, k=9):
        # (a|b)*a(a|b)^i families: determinizing the union tracks every
        # suffix window at once — the classic subset blowup.
        return [f"[ab]*a[ab]{{{i}}}" for i in range(1, k)]

    def test_states_visited_strictly_below_eager_state_count(self):
        options = self._blowup_options()
        lazy = union_of(*options)
        assert lazy.shortest_word() is not None
        for word in ("a", "ab", "abab", "bbbb"):
            lazy.accepts_word(word)
        eager = eager_union(*options)
        assert lazy.states_visited < eager.n_states

    def test_lru_bound_evicts_but_stays_correct(self):
        options = self._blowup_options(7)
        bounded = LazyUnion(
            [dfa_for_pattern(p) for p in options], max_cached_states=2
        )
        unbounded = union_of(*options)
        words = list(bounded.words(max_count=12, max_length=8))
        assert words == list(unbounded.words(max_count=12, max_length=8))
        assert bounded.states_evicted > 0

    def test_product_lru_parameter_exists_too(self):
        bounded = LazyProduct(
            [dfa_for_pattern("a+"), dfa_for_pattern("[ab]+")],
            max_cached_states=1,
        )
        assert bounded.shortest_word() == "a"
        assert bounded.materialize().accepts_word("aa")


class TestUnionInsideProduct:
    def test_union_nested_in_product_language(self):
        union = union_of("a+b", "b+a", "c[ab]")
        constraint = dfa_for_pattern("[abc]{2}")
        product = LazyProduct([union, constraint])
        eager = eager_union("a+b", "b+a", "c[ab]").intersect(constraint)
        for word in WORDS + ["ca", "cb", "ba"]:
            assert product.accepts_word(word) == eager.accepts_word(word)
        assert product.materialize().equivalent(eager)

    def test_nested_product_shortest_word(self):
        union = union_of("aaa+", "b")
        product = LazyProduct([union, dfa_for_pattern("[ab]{3,}")])
        witness = product.shortest_word()
        assert witness == "aaa"


class TestSolverWiring:
    def _membership(self, pattern, positive=True, var="x"):
        atom = InRe(
            StrVar(var), erase_captures(parse_regex(pattern, "").body)
        )
        return atom if positive else Not(atom)

    def test_wide_alternation_solves_via_lazy_union(self):
        pattern = "aaa|bbb|ccc|ddd|eee"
        solver = Solver(lazy_union_min_options=2)
        result = solver.solve(self._membership(pattern))
        assert result.status == SAT
        word = result.model[StrVar("x")]
        assert word in {"aaa", "bbb", "ccc", "ddd", "eee"}

    def test_negated_alternation_uses_de_morgan_components(self):
        # x ∈ [ab]{3} ∧ x ∉ (aaa|aab|aba|abb|baa) has solutions.
        solver = Solver(lazy_union_min_options=2)
        result = solver.solve(
            conj(
                [
                    self._membership("[ab]{3}"),
                    self._membership(
                        "aaa|aab|aba|abb|baa", positive=False
                    ),
                ]
            )
        )
        assert result.status == SAT
        word = result.model[StrVar("x")]
        assert word in {"bab", "bba", "bbb"}

    def test_union_plus_constraint_unsat(self):
        solver = Solver(lazy_union_min_options=2)
        result = solver.solve(
            conj(
                [
                    self._membership("aa|bb|cc|dd"),
                    self._membership("[ab]"),  # length conflict
                ]
            )
        )
        assert result.status == UNSAT

    def test_grouped_alternation_takes_the_union_path(self):
        # (?:a|b|...) / (a|b|...) is how wide alternations are usually
        # written; group wrappers must not hide them from the fast path.
        from repro.solver.core import _union_options

        for pattern in ("(?:red|green|blue|cyan)", "(red|green|blue|cyan)"):
            node = parse_regex(pattern, "").body
            options = _union_options(node, threshold=4)
            assert options is not None and len(options) == 4
        assert _union_options(
            parse_regex("(?:ab)+", "").body, threshold=2
        ) is None

    def test_threshold_zero_disables_lazy_unions(self):
        solver = Solver(lazy_union_min_options=0)
        result = solver.solve(self._membership("aaa|bbb|ccc|ddd"))
        assert result.status == SAT

    def test_results_agree_with_eager_path(self):
        pattern = "cat|dog|bird|fish|mouse"
        lazy = Solver(lazy_union_min_options=2).solve(
            self._membership(pattern)
        )
        eager = Solver(lazy_union_min_options=0).solve(
            self._membership(pattern)
        )
        assert lazy.status == eager.status == SAT
