#!/usr/bin/env python3
"""Matching-precedence refinement, step by step (§3.4 / §5).

Shows the CEGAR loop in action on ``/^a*(a)?$/``: the raw model admits
the spurious tuple ("aa", "aa", "a"); the concrete matcher refutes it;
one refinement constraint later the solver returns the spec-correct
assignment.

Run:  python examples/cegar_precedence.py
"""

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.regex import RegExp
from repro.solver import SAT, Solver


def main() -> None:
    source = r"^a*(a)?$"
    regexp = SymbolicRegExp(source)
    inp = StrVar("w")
    model = regexp.exec_model(inp)

    # Pin the word to "aa" and ask the *raw* model for captures.
    problem = conj([model.match_formula, Eq(inp, StrConst("aa"))])
    raw = Solver().solve(problem)
    c1 = raw.model[model.captures[1]]
    print(f"raw model for w='aa':   C1 = {c1!r}   <- may be spurious")

    # What does the real engine say?
    concrete = RegExp(source).exec("aa")
    print(f"concrete matcher says:  C1 = {concrete[1]!r}")

    # Algorithm 1: solve, validate, refine, repeat.
    cegar = CegarSolver()
    refined = cegar.solve(problem, [model.constraint])
    assert refined.status == SAT
    c1 = refined.model[model.captures[1]]
    print(
        f"after {refined.refinements} refinement(s):  C1 = {c1!r}   "
        "<- validated against the matcher"
    )

    # The spurious tuple is now unreachable: pinning C1="a" is UNSAT.
    spurious = conj(
        [
            model.match_formula,
            Eq(inp, StrConst("aa")),
            Eq(model.captures[1], StrConst("a")),
        ]
    )
    result = cegar.solve(spurious, [model.constraint])
    print(f"forcing the spurious C1='a': {result.status}")


if __name__ == "__main__":
    main()
