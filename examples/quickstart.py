#!/usr/bin/env python3
"""Quickstart: solve ES6 regex constraints with sound capture semantics.

The library answers questions like "give me an input this regex matches,
with spec-correct capture groups" — the primitive that makes regexes
usable in dynamic symbolic execution (PLDI 2019).

Run:  python examples/quickstart.py
"""

from repro import RegExp
from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model import (
    CegarSolver,
    SymbolicRegExp,
    find_matching_input,
    find_non_matching_input,
)


def main() -> None:
    # 1. Concrete matching: a spec-compliant ES6 engine.
    regexp = RegExp(r"<(\w+)>([0-9]*)<\/\1>")
    match = regexp.exec("<timeout>500</timeout>")
    print("concrete exec:", list(match))

    # 2. Generation: find a word in the capturing language.
    word, captures = find_matching_input(r"<(\w+)>([0-9]*)<\/\1>")
    print(f"generated input: {word!r} with captures {captures}")

    # 3. Non-membership: find a word the regex rejects.
    reject = find_non_matching_input(r"^[0-9]+$")
    print(f"non-matching input for /^[0-9]+$/: {reject!r}")

    # 4. Matching precedence: the famous /^a*(a)?$/ example (§3.4).
    #    The raw model would happily claim C1="a" for input "aa"; the
    #    CEGAR loop validates against the concrete matcher and returns
    #    the spec-correct assignment (C1 undefined).
    word, captures = find_matching_input(r"^a*(a)?$")
    print(f"/^a*(a)?$/ gives {word!r}, C1 = {captures[1]!r} (spec-correct)")

    # 5. Mixed constraints — the DSE shape: "input matches R and the
    #    first capture equals 'timeout'".
    symbolic = SymbolicRegExp(r"<(\w+)>([0-9]*)<\/\1>")
    arg = StrVar("arg")
    model = symbolic.exec_model(arg)
    problem = conj(
        [model.match_formula, Eq(model.captures[1], StrConst("timeout"))]
    )
    result = CegarSolver().solve(problem, [model.constraint])
    print(
        "input forcing C1='timeout':",
        repr(result.model.eval_term(arg)),
    )


if __name__ == "__main__":
    main()
