#!/usr/bin/env python3
"""Exploring a library with the automatic harness (§7.3's setup).

Takes a mini-JS library exporting functions, synthesises a driver that
calls each export with symbolic strings, and runs the DSE engine at two
support levels to show the coverage difference regex modelling makes.

Run:  python examples/dse_library_exploration.py
"""

from repro.dse import RegexSupportLevel, analyze, build_harness

LIBRARY = r"""
function parseHexColor(s) {
    var m = /^#([0-9a-f]{2})([0-9a-f]{2})([0-9a-f]{2})$/i.exec(s);
    if (!m) { return null; }
    return {r: m[1], g: m[2], b: m[3]};
}

function isIsoDate(s) {
    var m = /^(\d{4})-(\d{2})-(\d{2})$/.exec(s);
    if (!m) { return false; }
    if (m[2] === "00") { return false; }
    if (m[3] === "00") { return false; }
    return true;
}

function stripComments(line) {
    if (/^\s*\/\//.test(line)) { return ""; }
    return line;
}

module.exports = {
    parseHexColor: parseHexColor,
    isIsoDate: isIsoDate,
    stripComments: stripComments
};
"""


def main() -> None:
    harnessed = build_harness(LIBRARY)
    print("Generated driver (appended to the library):")
    for line in harnessed.strip().splitlines()[-3:]:
        print("   ", line)
    print()

    for label, level in [
        ("concrete regexes ", RegexSupportLevel.CONCRETE),
        ("full regex support", RegexSupportLevel.REFINED),
    ]:
        result = analyze(
            harnessed, level=level, max_tests=40, time_budget=30
        )
        print(
            f"{label}: coverage {result.coverage:6.1%}   "
            f"tests {result.tests_run:3}   regex ops {result.regex_ops}"
        )


if __name__ == "__main__":
    main()
