// Mini-JS demo for `python -m repro batch examples/*.js`: a release-tag
// validator with capture-dependent branching (the shape that separates
// the regex support levels).
var tag = symbol("tag", "r1.0.0");
var m = /^r(\d+)\.(\d+)\.(\d+)(?:\+(\w+))?$/.exec(tag);
var channel = "none";
if (m) {
    if (m[1] === "0") {
        channel = "experimental";
    } else {
        channel = "stable";
    }
    if (m[4]) {
        if (m[4] === "hotfix") {
            assert(m[1] !== "0", "no hotfixes on experimental releases");
        } else {
            channel = "custom";
        }
    }
} else {
    if (/^nightly-/.test(tag)) {
        channel = "nightly";
    }
}
