#!/usr/bin/env python3
"""Listing 1 of the paper: DSE finds the XML-timeout bug.

The program parses ``<tag>number</tag>`` arguments; its regex uses
``[0-9]*`` (Kleene star), so ``<timeout></timeout>`` slips an *empty*
string into ``timeout``, and the final assertion
``/^[0-9]+$/.test(timeout)`` fails.  Without symbolic regex support the
DSE engine concretizes the ``exec`` call and never finds the bug (§3.2).

Run:  python examples/xml_timeout_bug.py
"""

from repro.dse import RegexSupportLevel, analyze

LISTING_1 = r"""
var timeout = '500';
var arg = symbol("arg0", "foo");
var parts = /<(\w+)>([0-9]*)<\/\1>/.exec(arg);
if (parts) {
  if (parts[1] === "timeout") {
    timeout = parts[2];
  }
}
assert(/^[0-9]+$/.test(timeout) === true, "timeout must be numeric");
"""


def main() -> None:
    print("Analysing Listing 1 with full regex support ...")
    full = analyze(LISTING_1, max_tests=25, time_budget=60)
    print(f"  tests run:  {full.tests_run}")
    print(f"  coverage:   {full.coverage:.0%}")
    for failure in full.failures:
        print(f"  BUG FOUND:  {failure}")

    print()
    print("Same program with concretized regexes (no symbolic support):")
    concrete = analyze(
        LISTING_1,
        level=RegexSupportLevel.CONCRETE,
        max_tests=25,
        time_budget=30,
    )
    print(f"  tests run:  {concrete.tests_run}")
    print(f"  coverage:   {concrete.coverage:.0%}")
    print(f"  bugs found: {len(concrete.failures)} (the bug is missed)")


if __name__ == "__main__":
    main()
