#!/usr/bin/env python3
"""The §7.1 survey: regex feature usage across an NPM-like corpus.

Generates a synthetic package corpus (calibrated to the paper's
population shape), extracts every regex literal with the static scanner,
classifies features, and prints Tables 4 and 5.

Run:  python examples/survey_corpus.py [n_packages]
"""

import sys

from repro.corpus import (
    CorpusConfig,
    format_table4,
    format_table5,
    generate_corpus,
    survey_packages,
)


def main() -> None:
    n_packages = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    print(f"Generating corpus of {n_packages} packages ...")
    corpus = generate_corpus(CorpusConfig(n_packages=n_packages))
    result = survey_packages(corpus)

    print()
    print("Table 4 — Regex usage by package")
    print(format_table4(result))
    print()
    print("Table 5 — Feature usage by regex (total vs unique)")
    print(format_table5(result))
    print()
    non_classical = sum(
        result.feature_totals[f]
        for f in ("capture_groups", "backreferences", "lookaheads",
                  "word_boundary")
    )
    print(
        f"Non-classical feature occurrences: {non_classical} "
        f"across {result.total_regexes} regexes — the features prior "
        "DSE tools ignored or approximated (RQ1)."
    )


if __name__ == "__main__":
    main()
