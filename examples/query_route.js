// Mini-JS demo for `python -m repro batch examples/*.js`: a toy router
// matching paths and query strings with two regexes whose captures feed
// later branches.
var path = symbol("path", "/home");
var r = /^\/(\w+)(?:\/(\d+))?$/.exec(path);
if (r) {
    if (r[1] === "users") {
        if (r[2]) {
            1;
        } else {
            assert(r[1] !== "users", "user routes need an id");
        }
    }
    if (r[1] === "admin") { 2; }
}
var query = symbol("query", "a=b");
var q = /^(\w+)=(\w*)$/.exec(query);
if (q) {
    if (q[2] === "") { 3; }
    if (q[1] === "debug") { 4; }
}
